#include "src/api/simulation.h"

#include <algorithm>
#include <cstdlib>
#include <exception>
#include <utility>

#include "src/base/assert.h"
#include "src/base/string_util.h"
#include "src/faults/fault_injector.h"

namespace elsc {

const char* KernelConfigLabel(KernelConfig config) {
  switch (config) {
    case KernelConfig::kUp:
      return "UP";
    case KernelConfig::kSmp1:
      return "1P";
    case KernelConfig::kSmp2:
      return "2P";
    case KernelConfig::kSmp4:
      return "4P";
  }
  return "?";
}

KernelConfig KernelConfigFromLabel(const std::string& label) {
  if (label == "UP" || label == "up") {
    return KernelConfig::kUp;
  }
  if (label == "1P" || label == "1p") {
    return KernelConfig::kSmp1;
  }
  if (label == "2P" || label == "2p") {
    return KernelConfig::kSmp2;
  }
  if (label == "4P" || label == "4p") {
    return KernelConfig::kSmp4;
  }
  ELSC_CHECK_MSG(false, "unknown kernel config label (expected UP|1P|2P|4P)");
  __builtin_unreachable();
}

MachineConfig MakeMachineConfig(KernelConfig config, SchedulerKind scheduler, uint64_t seed) {
  MachineConfig mc;
  mc.scheduler = scheduler;
  mc.seed = seed;
  switch (config) {
    case KernelConfig::kUp:
      mc.num_cpus = 1;
      mc.smp = false;
      break;
    case KernelConfig::kSmp1:
      mc.num_cpus = 1;
      mc.smp = true;
      break;
    case KernelConfig::kSmp2:
      mc.num_cpus = 2;
      mc.smp = true;
      break;
    case KernelConfig::kSmp4:
      mc.num_cpus = 4;
      mc.smp = true;
      break;
  }
  return mc;
}

namespace {

RunStats CollectStats(const Machine& machine) {
  RunStats stats;
  stats.sched = machine.scheduler().stats();
  stats.machine = machine.stats();
  stats.events = machine.engine().queue_stats();
  stats.memory.task_arena_bytes = machine.task_arena_bytes();
  stats.memory.task_arena_chunks = machine.task_arena_stats().chunks;
  stats.elapsed_sec = CyclesToSec(machine.Now());
  return stats;
}

// Shared run loop for every facade entry point: arms the chaos layer (a
// no-op when `chaos` is defaulted), traps recoverable invariant violations
// and uncaught workload exceptions so a corrupted run degrades into
// RunStats::failed instead of aborting, and folds the injector/auditor
// verdicts into the stats. A CellDeadlineExceeded from the supervisor's
// watchdog is deliberately NOT an std::exception and punches through to the
// supervisor's retry loop.
template <typename Workload>
RunStats RunWithChaos(Machine& machine, Workload& workload, Cycles deadline,
                      const ChaosOptions& chaos) {
  FaultInjector injector(machine, chaos.faults);
  SchedulerAuditor auditor(machine, chaos.audit);
  // Workloads that expose connection-lifecycle targets (their network-facing
  // sockets) hand them to the injector so a plan's conn-chaos fields can
  // act. Detected structurally: workloads without the hook (kcompile,
  // chaos_mix) are simply never victimized.
  if constexpr (requires { workload.LifecycleTargets(); }) {
    if (chaos.faults.ConnChaosEnabled()) {
      injector.AttachLifecycleTargets(workload.LifecycleTargets());
    }
  }
  injector.Arm();
  auditor.Arm();
  machine.Start();
  RunStats stats;
  {
    ViolationTrap trap;
    std::string exception_failure;
    try {
      machine.RunUntil([&workload] { return workload.Done(); }, deadline);
    } catch (const InvariantViolation&) {
      // Recorded in the trap; fall through and report the partial run.
    } catch (const std::exception& e) {
      exception_failure = StrFormat("uncaught exception: %s", e.what());
    }
    stats = CollectStats(machine);
    // Workloads that can count their sockets feed the memory high-water
    // block; the rest (kcompile, chaos_mix — no sockets) report zero.
    if constexpr (requires { workload.SocketCount(); }) {
      stats.memory.peak_live_sockets = workload.SocketCount();
    }
    if (!exception_failure.empty()) {
      stats.failed = true;
      stats.failure = std::move(exception_failure);
    }
    if (trap.triggered()) {
      const ViolationInfo& v = trap.info();
      stats.failed = true;
      stats.failure = StrFormat("invariant violation: %s at %s:%d%s%s", v.expr,
                                v.file, v.line, v.msg != nullptr ? " — " : "",
                                v.msg != nullptr ? v.msg : "");
    }
  }
  stats.faults = injector.stats();
  stats.audit = auditor.stats();
  if (auditor.failed()) {
    stats.failed = true;
    if (stats.failure.empty()) {
      stats.failure = auditor.diagnosis();
    }
  }
  return stats;
}

}  // namespace

std::string RunStatsDigest(const RunStats& stats) {
  const SchedStats& s = stats.sched;
  const MachineStats& m = stats.machine;
  const EventQueueStats& e = stats.events;
  std::string out;
  out += StrFormat("sched:%llu,%llu,%llu,%llu,%llu,%llu,%llu,%llu,%llu,%llu,%llu,%llu,%llu|",
                   static_cast<unsigned long long>(s.schedule_calls),
                   static_cast<unsigned long long>(s.idle_schedules),
                   static_cast<unsigned long long>(s.cycles_in_schedule),
                   static_cast<unsigned long long>(s.lock_wait_cycles),
                   static_cast<unsigned long long>(s.tasks_examined),
                   static_cast<unsigned long long>(s.recalc_entries),
                   static_cast<unsigned long long>(s.recalc_tasks_touched),
                   static_cast<unsigned long long>(s.picks_new_processor),
                   static_cast<unsigned long long>(s.picks_prev),
                   static_cast<unsigned long long>(s.picks_no_affinity),
                   static_cast<unsigned long long>(s.yield_reruns),
                   static_cast<unsigned long long>(s.wakeups),
                   static_cast<unsigned long long>(s.preemption_ipis));
  out += StrFormat("machine:%llu,%llu,%llu,%llu,%llu,%llu,%llu,%llu,%llu,%llu,%llu|",
                   static_cast<unsigned long long>(m.ticks),
                   static_cast<unsigned long long>(m.context_switches),
                   static_cast<unsigned long long>(m.migrations),
                   static_cast<unsigned long long>(m.wakeups),
                   static_cast<unsigned long long>(m.tasks_created),
                   static_cast<unsigned long long>(m.tasks_exited),
                   static_cast<unsigned long long>(m.quantum_expiries),
                   static_cast<unsigned long long>(m.preempt_requests),
                   static_cast<unsigned long long>(m.ticks_dropped),
                   static_cast<unsigned long long>(m.cpu_stalls),
                   static_cast<unsigned long long>(m.lock_stall_cycles));
  out += StrFormat("events:%llu,%llu,%llu,%llu,%llu,%llu|",
                   static_cast<unsigned long long>(e.scheduled),
                   static_cast<unsigned long long>(e.fired),
                   static_cast<unsigned long long>(e.cancelled),
                   static_cast<unsigned long long>(e.callback_heap_allocs),
                   static_cast<unsigned long long>(e.slot_allocs),
                   static_cast<unsigned long long>(e.max_heap_depth));
  // NOTE: the conn-chaos counters (conn_resets, conn_half_opens,
  // slow_peer_windows, reconnect_storms) are intentionally absent here. The
  // digest format is pinned by the golden-stats suite, and every
  // pre-lifecycle scenario must keep a bit-identical digest; the new
  // counters travel through EncodeRunStats and the proc report instead.
  const FaultStats& f = stats.faults;
  out += StrFormat("faults:%llu,%llu,%llu,%llu,%llu,%llu,%llu,%llu|",
                   static_cast<unsigned long long>(f.tick_drops),
                   static_cast<unsigned long long>(f.tick_jitters),
                   static_cast<unsigned long long>(f.storm_bursts),
                   static_cast<unsigned long long>(f.storm_tasks),
                   static_cast<unsigned long long>(f.spurious_wakes),
                   static_cast<unsigned long long>(f.yield_tasks),
                   static_cast<unsigned long long>(f.cpu_stalls),
                   static_cast<unsigned long long>(f.lock_stalls));
  const AuditStats& a = stats.audit;
  out += StrFormat("audit:%llu,%llu,%llu,%llu,%llu,%llu,%llu,%llu,%llu|",
                   static_cast<unsigned long long>(a.audits),
                   static_cast<unsigned long long>(a.picks_audited),
                   static_cast<unsigned long long>(a.conservation_violations),
                   static_cast<unsigned long long>(a.counter_violations),
                   static_cast<unsigned long long>(a.structure_violations),
                   static_cast<unsigned long long>(a.table_violations),
                   static_cast<unsigned long long>(a.ordering_violations),
                   static_cast<unsigned long long>(a.starvation_reports),
                   static_cast<unsigned long long>(a.livelock_reports));
  // The failure string is a human-readable diagnosis (not canonical); only
  // the verdict bit participates in the digest.
  out += StrFormat("failed:%d|", stats.failed ? 1 : 0);
  out += StrFormat("elapsed:%a", stats.elapsed_sec);
  return out;
}

namespace {

// Cursor over a space-separated token stream; doubles round-trip via %a /
// strtod (which parses hex-floats exactly).
class TokenReader {
 public:
  explicit TokenReader(const std::string& payload) : p_(payload.c_str()) {}

  bool U64(uint64_t* value) {
    char* end = nullptr;
    *value = std::strtoull(p_, &end, 10);
    return Advance(end);
  }

  bool F64(double* value) {
    char* end = nullptr;
    *value = std::strtod(p_, &end);
    return Advance(end);
  }

  bool Bool(bool* value) {
    uint64_t v = 0;
    if (!U64(&v) || v > 1) {
      return false;
    }
    *value = v != 0;
    return true;
  }

  // Everything after the tokens consumed so far (the trailing free-form
  // failure string; "" when the stream is exhausted).
  std::string Rest() const { return std::string(p_); }

 private:
  bool Advance(char* end) {
    if (end == p_) {
      return false;  // No digits consumed: malformed.
    }
    p_ = end;
    while (*p_ == ' ') {
      ++p_;
    }
    return true;
  }

  const char* p_;
};

void AppendU64(std::string* out, uint64_t value) {
  *out += StrFormat("%llu ", static_cast<unsigned long long>(value));
}

void AppendF64(std::string* out, double value) {
  *out += StrFormat("%a ", value);
}

}  // namespace

std::string EncodeRunStats(const RunStats& stats) {
  std::string out;
  const SchedStats& s = stats.sched;
  AppendU64(&out, s.schedule_calls);
  AppendU64(&out, s.idle_schedules);
  AppendU64(&out, s.cycles_in_schedule);
  AppendU64(&out, s.lock_wait_cycles);
  AppendU64(&out, s.tasks_examined);
  AppendU64(&out, s.recalc_entries);
  AppendU64(&out, s.recalc_tasks_touched);
  AppendU64(&out, s.picks_new_processor);
  AppendU64(&out, s.picks_prev);
  AppendU64(&out, s.picks_no_affinity);
  AppendU64(&out, s.yield_reruns);
  AppendU64(&out, s.wakeups);
  AppendU64(&out, s.preemption_ipis);
  AppendU64(&out, s.percpu_lock_acquisitions);
  AppendU64(&out, s.percpu_lock_contended);
  AppendU64(&out, s.percpu_lock_hold_cycles);
  AppendU64(&out, s.percpu_lock_wait_cycles);
  AppendU64(&out, s.double_locks);
  AppendU64(&out, s.load_balance_calls);
  AppendU64(&out, s.pull_migrations);
  AppendU64(&out, s.array_swaps);
  const MachineStats& m = stats.machine;
  AppendU64(&out, m.ticks);
  AppendU64(&out, m.context_switches);
  AppendU64(&out, m.migrations);
  AppendU64(&out, m.wakeups);
  AppendU64(&out, m.tasks_created);
  AppendU64(&out, m.tasks_exited);
  AppendU64(&out, m.quantum_expiries);
  AppendU64(&out, m.preempt_requests);
  AppendU64(&out, m.ticks_dropped);
  AppendU64(&out, m.cpu_stalls);
  AppendU64(&out, m.lock_stall_cycles);
  AppendU64(&out, m.peak_live_tasks);
  const EventQueueStats& e = stats.events;
  AppendU64(&out, e.scheduled);
  AppendU64(&out, e.fired);
  AppendU64(&out, e.cancelled);
  AppendU64(&out, e.callback_heap_allocs);
  AppendU64(&out, e.slot_allocs);
  AppendU64(&out, e.max_heap_depth);
  const FaultStats& f = stats.faults;
  AppendU64(&out, f.tick_drops);
  AppendU64(&out, f.tick_jitters);
  AppendU64(&out, f.storm_bursts);
  AppendU64(&out, f.storm_tasks);
  AppendU64(&out, f.spurious_wakes);
  AppendU64(&out, f.yield_tasks);
  AppendU64(&out, f.cpu_stalls);
  AppendU64(&out, f.lock_stalls);
  AppendU64(&out, f.conn_resets);
  AppendU64(&out, f.conn_half_opens);
  AppendU64(&out, f.slow_peer_windows);
  AppendU64(&out, f.reconnect_storms);
  const AuditStats& a = stats.audit;
  AppendU64(&out, a.audits);
  AppendU64(&out, a.picks_audited);
  AppendU64(&out, a.conservation_violations);
  AppendU64(&out, a.counter_violations);
  AppendU64(&out, a.structure_violations);
  AppendU64(&out, a.table_violations);
  AppendU64(&out, a.ordering_violations);
  AppendU64(&out, a.starvation_reports);
  AppendU64(&out, a.livelock_reports);
  const MemoryStats& mem = stats.memory;
  AppendU64(&out, mem.task_arena_bytes);
  AppendU64(&out, mem.task_arena_chunks);
  AppendU64(&out, mem.peak_live_sockets);
  AppendF64(&out, stats.elapsed_sec);
  AppendU64(&out, stats.failed ? 1 : 0);
  out += stats.failure;  // Last: may contain spaces (but never newlines).
  return out;
}

bool DecodeRunStats(const std::string& payload, RunStats* stats) {
  RunStats out;
  TokenReader r(payload);
  SchedStats& s = out.sched;
  MachineStats& m = out.machine;
  EventQueueStats& e = out.events;
  FaultStats& f = out.faults;
  AuditStats& a = out.audit;
  const bool ok =
      r.U64(&s.schedule_calls) && r.U64(&s.idle_schedules) &&
      r.U64(&s.cycles_in_schedule) && r.U64(&s.lock_wait_cycles) &&
      r.U64(&s.tasks_examined) && r.U64(&s.recalc_entries) &&
      r.U64(&s.recalc_tasks_touched) && r.U64(&s.picks_new_processor) &&
      r.U64(&s.picks_prev) && r.U64(&s.picks_no_affinity) &&
      r.U64(&s.yield_reruns) && r.U64(&s.wakeups) && r.U64(&s.preemption_ipis) &&
      r.U64(&s.percpu_lock_acquisitions) && r.U64(&s.percpu_lock_contended) &&
      r.U64(&s.percpu_lock_hold_cycles) && r.U64(&s.percpu_lock_wait_cycles) &&
      r.U64(&s.double_locks) && r.U64(&s.load_balance_calls) &&
      r.U64(&s.pull_migrations) && r.U64(&s.array_swaps) &&
      r.U64(&m.ticks) && r.U64(&m.context_switches) && r.U64(&m.migrations) &&
      r.U64(&m.wakeups) && r.U64(&m.tasks_created) && r.U64(&m.tasks_exited) &&
      r.U64(&m.quantum_expiries) && r.U64(&m.preempt_requests) &&
      r.U64(&m.ticks_dropped) && r.U64(&m.cpu_stalls) &&
      r.U64(&m.lock_stall_cycles) && r.U64(&m.peak_live_tasks) &&
      r.U64(&e.scheduled) && r.U64(&e.fired) &&
      r.U64(&e.cancelled) && r.U64(&e.callback_heap_allocs) &&
      r.U64(&e.slot_allocs) && r.U64(&e.max_heap_depth) && r.U64(&f.tick_drops) &&
      r.U64(&f.tick_jitters) && r.U64(&f.storm_bursts) && r.U64(&f.storm_tasks) &&
      r.U64(&f.spurious_wakes) && r.U64(&f.yield_tasks) && r.U64(&f.cpu_stalls) &&
      r.U64(&f.lock_stalls) && r.U64(&f.conn_resets) &&
      r.U64(&f.conn_half_opens) && r.U64(&f.slow_peer_windows) &&
      r.U64(&f.reconnect_storms) && r.U64(&a.audits) && r.U64(&a.picks_audited) &&
      r.U64(&a.conservation_violations) && r.U64(&a.counter_violations) &&
      r.U64(&a.structure_violations) && r.U64(&a.table_violations) &&
      r.U64(&a.ordering_violations) && r.U64(&a.starvation_reports) &&
      r.U64(&a.livelock_reports) && r.U64(&out.memory.task_arena_bytes) &&
      r.U64(&out.memory.task_arena_chunks) &&
      r.U64(&out.memory.peak_live_sockets) && r.F64(&out.elapsed_sec) &&
      r.Bool(&out.failed);
  if (!ok) {
    return false;
  }
  out.failure = r.Rest();
  *stats = std::move(out);
  return true;
}

void MergeRunStats(RunStats* into, const RunStats& from) {
  SchedStats& s = into->sched;
  const SchedStats& fs = from.sched;
  s.schedule_calls += fs.schedule_calls;
  s.idle_schedules += fs.idle_schedules;
  s.cycles_in_schedule += fs.cycles_in_schedule;
  s.lock_wait_cycles += fs.lock_wait_cycles;
  s.tasks_examined += fs.tasks_examined;
  s.recalc_entries += fs.recalc_entries;
  s.recalc_tasks_touched += fs.recalc_tasks_touched;
  s.picks_new_processor += fs.picks_new_processor;
  s.picks_prev += fs.picks_prev;
  s.picks_no_affinity += fs.picks_no_affinity;
  s.yield_reruns += fs.yield_reruns;
  s.wakeups += fs.wakeups;
  s.preemption_ipis += fs.preemption_ipis;
  s.percpu_lock_acquisitions += fs.percpu_lock_acquisitions;
  s.percpu_lock_contended += fs.percpu_lock_contended;
  s.percpu_lock_hold_cycles += fs.percpu_lock_hold_cycles;
  s.percpu_lock_wait_cycles += fs.percpu_lock_wait_cycles;
  s.double_locks += fs.double_locks;
  s.load_balance_calls += fs.load_balance_calls;
  s.pull_migrations += fs.pull_migrations;
  s.array_swaps += fs.array_swaps;
  MachineStats& m = into->machine;
  const MachineStats& fm = from.machine;
  m.ticks += fm.ticks;
  m.context_switches += fm.context_switches;
  m.migrations += fm.migrations;
  m.wakeups += fm.wakeups;
  m.tasks_created += fm.tasks_created;
  m.tasks_exited += fm.tasks_exited;
  m.quantum_expiries += fm.quantum_expiries;
  m.preempt_requests += fm.preempt_requests;
  m.ticks_dropped += fm.ticks_dropped;
  m.cpu_stalls += fm.cpu_stalls;
  m.lock_stall_cycles += fm.lock_stall_cycles;
  // Summed per-machine peaks: for machines that coexisted this is the total
  // footprint bound (see header comment).
  m.peak_live_tasks += fm.peak_live_tasks;
  EventQueueStats& e = into->events;
  const EventQueueStats& fe = from.events;
  e.scheduled += fe.scheduled;
  e.fired += fe.fired;
  e.cancelled += fe.cancelled;
  e.callback_heap_allocs += fe.callback_heap_allocs;
  e.slot_allocs += fe.slot_allocs;
  e.max_heap_depth = std::max(e.max_heap_depth, fe.max_heap_depth);
  FaultStats& f = into->faults;
  const FaultStats& ff = from.faults;
  f.tick_drops += ff.tick_drops;
  f.tick_jitters += ff.tick_jitters;
  f.storm_bursts += ff.storm_bursts;
  f.storm_tasks += ff.storm_tasks;
  f.spurious_wakes += ff.spurious_wakes;
  f.yield_tasks += ff.yield_tasks;
  f.cpu_stalls += ff.cpu_stalls;
  f.lock_stalls += ff.lock_stalls;
  f.conn_resets += ff.conn_resets;
  f.conn_half_opens += ff.conn_half_opens;
  f.slow_peer_windows += ff.slow_peer_windows;
  f.reconnect_storms += ff.reconnect_storms;
  AuditStats& a = into->audit;
  const AuditStats& fa = from.audit;
  a.audits += fa.audits;
  a.picks_audited += fa.picks_audited;
  a.conservation_violations += fa.conservation_violations;
  a.counter_violations += fa.counter_violations;
  a.structure_violations += fa.structure_violations;
  a.table_violations += fa.table_violations;
  a.ordering_violations += fa.ordering_violations;
  a.starvation_reports += fa.starvation_reports;
  a.livelock_reports += fa.livelock_reports;
  MemoryStats& mem = into->memory;
  const MemoryStats& fmem = from.memory;
  mem.task_arena_bytes += fmem.task_arena_bytes;
  mem.task_arena_chunks += fmem.task_arena_chunks;
  mem.peak_live_sockets += fmem.peak_live_sockets;
  if (from.failed && !into->failed) {
    into->failed = true;
    into->failure = from.failure;
  }
  into->elapsed_sec = std::max(into->elapsed_sec, from.elapsed_sec);
}

std::string EncodeVolanoRun(const VolanoRun& run) {
  // VolanoResult first so the RunStats trailer (free-form failure string)
  // stays at the end of the payload.
  std::string out;
  AppendU64(&out, run.result.completed ? 1 : 0);
  AppendF64(&out, run.result.elapsed_sec);
  AppendU64(&out, run.result.messages_sent);
  AppendU64(&out, run.result.messages_delivered);
  AppendF64(&out, run.result.throughput);
  AppendU64(&out, run.result.resets_seen);
  AppendU64(&out, run.result.retries);
  AppendU64(&out, run.result.reconnects);
  AppendU64(&out, run.result.abandons);
  AppendU64(&out, run.result.messages_lost);
  out += EncodeRunStats(run.stats);
  return out;
}

bool DecodeVolanoRun(const std::string& payload, VolanoRun* run) {
  VolanoRun out;
  TokenReader r(payload);
  if (!r.Bool(&out.result.completed) || !r.F64(&out.result.elapsed_sec) ||
      !r.U64(&out.result.messages_sent) || !r.U64(&out.result.messages_delivered) ||
      !r.F64(&out.result.throughput) || !r.U64(&out.result.resets_seen) ||
      !r.U64(&out.result.retries) || !r.U64(&out.result.reconnects) ||
      !r.U64(&out.result.abandons) || !r.U64(&out.result.messages_lost)) {
    return false;
  }
  if (!DecodeRunStats(r.Rest(), &out.stats)) {
    return false;
  }
  *run = std::move(out);
  return true;
}

VolanoRun RunVolano(const MachineConfig& machine_config, const VolanoConfig& workload_config,
                    Cycles deadline, const ChaosOptions& chaos) {
  Machine machine(machine_config);
  VolanoWorkload workload(machine, workload_config);
  workload.Setup();
  VolanoRun run;
  run.stats = RunWithChaos(machine, workload, deadline, chaos);
  run.result = workload.Result();
  return run;
}

KcompileRun RunKcompile(const MachineConfig& machine_config,
                        const KcompileConfig& workload_config, Cycles deadline,
                        const ChaosOptions& chaos) {
  Machine machine(machine_config);
  KcompileWorkload workload(machine, workload_config);
  workload.Setup();
  KcompileRun run;
  run.stats = RunWithChaos(machine, workload, deadline, chaos);
  run.result = workload.Result();
  return run;
}

WebserverRun RunWebserver(const MachineConfig& machine_config,
                          const WebserverConfig& workload_config, Cycles deadline,
                          const ChaosOptions& chaos) {
  Machine machine(machine_config);
  WebserverWorkload workload(machine, workload_config);
  workload.Setup();
  WebserverRun run;
  run.stats = RunWithChaos(machine, workload, deadline, chaos);
  run.result = workload.Result();
  return run;
}

ChaosMixRun RunChaosMix(const MachineConfig& machine_config,
                        const ChaosMixConfig& workload_config, Cycles deadline,
                        const ChaosOptions& chaos) {
  Machine machine(machine_config);
  ChaosMixWorkload workload(machine, workload_config);
  workload.Setup();
  ChaosMixRun run;
  run.stats = RunWithChaos(machine, workload, deadline, chaos);
  run.result = workload.Result();
  return run;
}

}  // namespace elsc
