// Window-granular checkpoint/restore for the sharded federation.
//
// A scale scenario big enough to matter (thousands of rooms, ~10^6
// connections) runs long enough that a SIGKILL / OOM / host reboot
// mid-federation is a real operational event. The run journal
// (src/harness/supervisor.h) resumes at matrix-*cell* granularity — it
// re-runs a killed cell from scratch. This layer checkpoints *inside* a
// cell: at configurable window barriers the coordinator serializes the
// federation's coordinator-visible state into a checksummed, fsync'd,
// atomically-renamed segment file, and a restarted process resumes from the
// newest valid segment, producing a digest and bench JSON byte-identical to
// an uninterrupted run.
//
// What a segment holds (see docs/SCALE.md "Checkpoint & recovery"):
//
//   * the aggregate ScaleRun-so-far: every folded-node counter, the merged
//     RunStats, the concurrent peaks, and the streaming FNV digest chain;
//   * the fabric cursor: per-source emission counters (loss/dup fault coins
//     are keyed by (src, dst, seq)), cumulative FabricStats, closed flag —
//     lanes are always empty at a post-Exchange barrier, so in-flight
//     traffic lives in destination arrival logs instead;
//   * per live/down node: lifecycle (incarnation, clock offset, crash bank),
//     the unfinished-room set, boot-time counter snapshots, the current
//     incarnation's fabric arrival log, and a verification line (counters +
//     RunStatsDigest + ack/retransmit/reorder buffer state).
//
// Restore rebuilds live nodes by *deterministic replay*: the node is booted
// exactly as the original incarnation was (same derived seed), stepped
// window-by-window to the checkpoint barrier with its logged arrivals
// re-scheduled at the original barriers, then cross-checked against the
// stored verification line. Engine event queues hold closures and cannot be
// serialized; replay of a deterministic simulation reconstructs them
// exactly, at a cost bounded by one incarnation's windows. A segment that
// fails decoding, checksum, config binding, or post-replay verification is
// rejected with a one-line stderr repro and the runner falls back to the
// next-older segment, then to a cold start — never UB, never a crash.
//
// File format (text, one record per line, journal-style escaping for
// embedded payloads, FNV-1a-64 trailer over all preceding bytes):
//
//   elscscale v1 fp=<hex16> seed=<u64> window=<u64> nodes=<n>
//   run <digest hex16> <aggregate counters...>
//   stats <escaped EncodeRunStats>
//   fabric <closed> <stats...> <n> <next_seq...>
//   node <index> <state> <lifecycle + counters + rooms...>
//   carried <index> <escaped EncodeRunStats>        (optional per node)
//   arr <index> <window> <arrival> <id> <sender> <room> <sent_at> <payload>
//   verify <index> <escaped verification line>
//   end <fnv hex16>

#ifndef SRC_API_SCALE_CKPT_H_
#define SRC_API_SCALE_CKPT_H_

#include <cstdint>
#include <string>
#include <vector>

#include "src/sim/fabric.h"

namespace elsc {

// Checkpointing knobs, resolved from the environment when ScaleConfig's
// copy has an empty path. Never part of the digest/signature/JSON.
struct ScaleCheckpointOptions {
  std::string path;   // Segment path prefix; empty = checkpointing off.
  uint64_t every = 16;  // Segment cadence in windows (0 = forced-only).
  int keep = 2;         // Newest segments retained per scenario.
  // Test hook: force a segment at this window and return a partial
  // (completed == false) run instead of continuing — a process kill without
  // killing the test process. 0 = off.
  uint64_t stop_after_window = 0;

  bool armed() const { return !path.empty(); }
  // ELSC_SCALE_CKPT / ELSC_SCALE_CKPT_EVERY / ELSC_SCALE_CKPT_KEEP.
  static ScaleCheckpointOptions FromEnv();
};

// One logged fabric delivery: enough to re-schedule it during replay at the
// barrier it originally landed on. Logged in sink-call order (duplicated
// deliveries appear twice, like the sink saw them).
struct CkptArrival {
  uint64_t window = 0;   // Barrier (window index) that scheduled it.
  Cycles arrival = 0;    // Global arrival time.
  Message payload;
};

// Per-node checkpoint record. Only live (state 1) and down (state 2) nodes
// are recorded — a folded node's contribution already lives in the
// aggregate digest/stats.
struct CkptNode {
  int index = 0;
  int state = 1;  // 1 = live (machine running), 2 = down (awaiting restart).
  int incarnation = 0;
  Cycles clock_offset = 0;
  uint64_t crashes = 0;
  uint64_t restart_window = 0;
  bool chat_done = false;
  uint64_t banked_sent = 0;
  uint64_t banked_delivered = 0;
  uint64_t chat_messages_lost = 0;
  uint64_t crash_inflight_dropped = 0;
  // Federation counters. Live nodes: the boot-time snapshot of the current
  // incarnation (replay re-adds this incarnation's deltas). Down nodes: the
  // current values (nothing to replay).
  uint64_t beacons_sent = 0;
  uint64_t beacons_received = 0;
  uint64_t inbox_overflows = 0;
  uint64_t late_writes = 0;
  uint64_t last_remote_progress = 0;
  uint64_t retransmits = 0;
  uint64_t retx_abandoned = 0;
  uint64_t dup_discards = 0;
  uint64_t acks_sent = 0;
  uint64_t acks_received = 0;
  std::vector<int> room_ids;      // This incarnation's (unfinished) rooms.
  std::string carried_stats;      // EncodeRunStats of dead incarnations; "" = none.
  std::vector<CkptArrival> arrivals;  // Live nodes: this incarnation's log.
  std::string verify;             // Live nodes: post-replay cross-check line.
};

// Full federation checkpoint at the end of one window barrier.
struct ScaleCheckpoint {
  uint64_t config_fp = 0;  // ScaleConfigFingerprint binding.
  uint64_t seed = 0;
  uint64_t window_index = 0;
  int num_nodes = 0;
  // Coordinator loop state.
  int chats_done = 0;
  bool all_completed = true;
  bool inboxes_closed = false;
  Cycles inbox_close_at = 0;
  uint64_t router_close_window = 0;  // Window Close() ran at; 0 = still open.
  uint64_t inbox_close_window = 0;   // Window inboxes EOF'd at; 0 = open.
  // Aggregate run-so-far (folded nodes + coordinator accounting).
  uint64_t digest = 0;  // The streaming FNV accumulator.
  uint64_t messages_sent = 0;
  uint64_t messages_delivered = 0;
  uint64_t beacons_sent = 0;
  uint64_t beacons_received = 0;
  uint64_t inbox_overflows = 0;
  uint64_t late_writes = 0;
  uint64_t node_crashes = 0;
  uint64_t node_restarts = 0;
  uint64_t windows_degraded = 0;
  uint64_t retransmits = 0;
  uint64_t retx_abandoned = 0;
  uint64_t dup_discards = 0;
  uint64_t acks_sent = 0;
  uint64_t acks_received = 0;
  uint64_t chat_messages_lost = 0;
  uint64_t crash_inflight_dropped = 0;
  uint64_t peak_live_tasks = 0;
  uint64_t peak_live_nodes = 0;
  uint64_t peak_task_arena_bytes = 0;
  uint64_t peak_live_sockets = 0;
  std::string agg_stats;  // EncodeRunStats of the folded RunStats.
  FabricRouterState fabric;
  std::vector<CkptNode> nodes;  // Ascending index; missing = folded.
};

// Exact round-trip codec. Decode validates the header magic/version, every
// field, and the FNV trailer; false (with a one-line *error) on anything
// torn, truncated, bit-flipped, or version-mismatched — never UB.
std::string EncodeScaleCheckpoint(const ScaleCheckpoint& ckpt);
bool DecodeScaleCheckpoint(const std::string& contents, ScaleCheckpoint* ckpt,
                           std::string* error);

// Segment naming: "<prefix>.<fp hex16>.w<window>.ckpt". The fingerprint in
// the name keeps concurrently-running cells of one bench sweep (distinct
// scenarios, one ELSC_SCALE_CKPT prefix) from clobbering each other.
std::string CheckpointSegmentPath(const std::string& prefix, uint64_t config_fp,
                                  uint64_t window);

struct CheckpointSegmentInfo {
  uint64_t window = 0;
  std::string path;
};

// Existing segments for (prefix, fingerprint), newest window first.
std::vector<CheckpointSegmentInfo> ListCheckpointSegments(
    const std::string& prefix, uint64_t config_fp);

// Encodes + atomically writes one segment, then prunes to `keep` newest.
// False (with *error) on I/O failure — the run continues uncheckpointed.
bool WriteCheckpointSegment(const ScaleCheckpointOptions& options,
                            const ScaleCheckpoint& ckpt, std::string* error);

// Deletes every segment for (prefix, fingerprint) — called on clean
// completion so a finished scenario can never resurrect from stale state.
void RemoveCheckpointSegments(const std::string& prefix, uint64_t config_fp);

}  // namespace elsc

#endif  // SRC_API_SCALE_CKPT_H_
