#include "src/api/overload.h"

#include "src/base/string_util.h"

namespace elsc {

Cycles WebserverRequestCpuCycles(const WebserverConfig& config) {
  const double disk_submits = config.disk_probability;  // One syscall per miss.
  const double cycles = static_cast<double>(config.syscall_cycles)  // accept
                        + static_cast<double>(config.parse_cycles)
                        + disk_submits * static_cast<double>(config.syscall_cycles)
                        + static_cast<double>(config.respond_cycles);
  return static_cast<Cycles>(cycles);
}

double WebserverSaturationRate(const WebserverConfig& config, int cpus) {
  const double per_request = static_cast<double>(WebserverRequestCpuCycles(config));
  return static_cast<double>(cpus) * static_cast<double>(kCyclesPerSec) / per_request;
}

WebserverConfig OverloadBaseConfig(Cycles duration) {
  WebserverConfig cfg;
  cfg.duration = duration;
  // A pool deep enough that disk waits never bound throughput (CPU is the
  // bottleneck the sweep studies), over a deliberately bounded backlog so
  // overload surfaces as accounted drops instead of unbounded queueing.
  cfg.workers = 64;
  cfg.accept_queue_capacity = 128;
  // Resilience layer on: timed accepts, deadline shedding, retrying clients.
  cfg.accept_timeout = MsToCycles(10);
  // Just under the full-backlog drain time (capacity / service rate), so
  // shedding engages only once the backlog is deep — past saturation.
  cfg.shed_deadline = MsToCycles(15);
  cfg.retry_arrivals = true;
  return cfg;
}

OverloadCell RunOverloadCell(const OverloadCellSpec& spec, const WebserverConfig& base,
                             const ChaosOptions& chaos) {
  OverloadCell cell;
  cell.spec = spec;
  const MachineConfig mc = MakeMachineConfig(spec.kernel, spec.scheduler, spec.seed);
  cell.saturation_rate = WebserverSaturationRate(base, mc.num_cpus);
  WebserverConfig cfg = base;
  cfg.arrival_rate_per_sec = cell.saturation_rate * spec.load_factor;
  cell.offered_rate = cfg.arrival_rate_per_sec;
  cell.run = RunWebserver(mc, cfg, SecToCycles(3600), chaos);
  return cell;
}

std::string RenderOverloadJson(const std::vector<OverloadCell>& cells, uint64_t seed,
                               bool chaos) {
  std::string out;
  out += StrFormat("{\n  \"seed\": %llu,\n  \"chaos\": %s,\n  \"cells\": [\n",
                   static_cast<unsigned long long>(seed), chaos ? "true" : "false");
  for (size_t i = 0; i < cells.size(); ++i) {
    const OverloadCell& cell = cells[i];
    const WebserverResult& r = cell.run.result;
    const FaultStats& f = cell.run.stats.faults;
    out += StrFormat(
        "    {\"kernel\": \"%s\", \"scheduler\": \"%s\", \"load_factor\": %.4f,\n"
        "     \"saturation_rate\": %.4f, \"offered_rate\": %.4f, \"goodput\": %.4f,\n"
        "     \"arrived\": %llu, \"completed\": %llu, \"dropped\": %llu,\n"
        "     \"drops\": {\"backlog\": %llu, \"shed\": %llu, \"reset\": %llu},\n"
        "     \"retries\": %llu, \"abandons\": %llu,\n"
        "     \"latency_us\": {\"mean\": %.4f, \"p50\": %llu, \"p95\": %llu, "
        "\"p99\": %llu, \"p999\": %llu},\n"
        "     \"injected\": {\"conn_resets\": %llu, \"conn_half_opens\": %llu, "
        "\"slow_peer_windows\": %llu, \"reconnect_storms\": %llu},\n"
        "     \"elapsed_sim_sec\": %.6f, \"failed\": %s}%s\n",
        KernelConfigLabel(cell.spec.kernel), SchedulerKindName(cell.spec.scheduler),
        cell.spec.load_factor, cell.saturation_rate, cell.offered_rate, r.throughput,
        static_cast<unsigned long long>(r.requests_arrived),
        static_cast<unsigned long long>(r.requests_completed),
        static_cast<unsigned long long>(r.requests_dropped),
        static_cast<unsigned long long>(r.dropped_backlog),
        static_cast<unsigned long long>(r.dropped_shed),
        static_cast<unsigned long long>(r.dropped_reset),
        static_cast<unsigned long long>(r.retries),
        static_cast<unsigned long long>(r.abandons), r.latency_mean_us,
        static_cast<unsigned long long>(r.latency_p50_us),
        static_cast<unsigned long long>(r.latency_p95_us),
        static_cast<unsigned long long>(r.latency_p99_us),
        static_cast<unsigned long long>(r.latency_p999_us),
        static_cast<unsigned long long>(f.conn_resets),
        static_cast<unsigned long long>(f.conn_half_opens),
        static_cast<unsigned long long>(f.slow_peer_windows),
        static_cast<unsigned long long>(f.reconnect_storms), r.elapsed_sec,
        cell.run.stats.failed ? "true" : "false", i + 1 < cells.size() ? "," : "");
  }
  out += "  ]\n}\n";
  return out;
}

}  // namespace elsc
