// Overload sweep: open-loop load-factor sweeps of the webserver workload.
//
// The paper evaluates schedulers at a fixed load; the interesting robustness
// question is what happens past saturation. Each sweep cell offers a Poisson
// arrival stream at `load_factor` x the machine's derived saturation rate
// (0.5x -> 2x), with the resilience layer on: bounded accept backlog,
// deadline shedding, and retrying clients with deterministic jittered
// backoff. The cell reports offered load vs goodput plus the drop/retry
// breakdown and latency tail (p50/p99/p99.9).
//
// The cell runner and the JSON renderer live here (not in bench/) so the
// determinism test can drive the same cells through RunMatrix at several job
// counts and byte-compare the rendered JSON: everything in the JSON is
// simulated data, bit-identical regardless of host parallelism.

#ifndef SRC_API_OVERLOAD_H_
#define SRC_API_OVERLOAD_H_

#include <cstdint>
#include <string>
#include <vector>

#include "src/api/simulation.h"

namespace elsc {

// One sweep cell: a scheduler backend on a kernel configuration, offered
// load_factor x the saturation rate.
struct OverloadCellSpec {
  KernelConfig kernel = KernelConfig::kSmp4;
  SchedulerKind scheduler = SchedulerKind::kLinux;
  double load_factor = 1.0;
  uint64_t seed = 1;
};

// Mean CPU demand of one request in cycles: accept + parse + the expected
// disk-submit syscall + respond. Disk *wait* is sleep, not CPU, so it bounds
// worker-pool occupancy but not throughput; jitter is mean-preserving.
Cycles WebserverRequestCpuCycles(const WebserverConfig& config);

// The offered load (requests/sec) that nominally saturates `cpus` CPUs:
// cpus / per-request CPU demand. Scheduling overhead makes the achievable
// goodput a little lower — which is exactly what the sweep measures.
double WebserverSaturationRate(const WebserverConfig& config, int cpus);

// Baseline webserver configuration for sweep cells: the resilience layer on
// (bounded backlog, deadline shedding, retrying clients, timed accepts) over
// the standard request cost model.
WebserverConfig OverloadBaseConfig(Cycles duration);

struct OverloadCell {
  OverloadCellSpec spec;
  double saturation_rate = 0.0;  // Requests/sec at load factor 1.0.
  double offered_rate = 0.0;     // saturation_rate x spec.load_factor.
  WebserverRun run;
};

// Runs one sweep cell to completion: derives the offered rate from `base`
// and the cell's kernel, then runs the webserver under it (optionally with
// chaos — connection-lifecycle injectors need `chaos.faults` enabled).
OverloadCell RunOverloadCell(const OverloadCellSpec& spec, const WebserverConfig& base,
                             const ChaosOptions& chaos = {});

// Renders the sweep as one canonical JSON string containing only simulated
// (deterministic) data: no wall-clock timings, no supervision counters. Two
// runs of the same cells are byte-identical at any ELSC_BENCH_JOBS value.
std::string RenderOverloadJson(const std::vector<OverloadCell>& cells, uint64_t seed,
                               bool chaos);

}  // namespace elsc

#endif  // SRC_API_OVERLOAD_H_
