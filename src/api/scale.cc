#include "src/api/scale.h"

#include <sys/resource.h>

#include <algorithm>
#include <cstdlib>
#include <deque>
#include <map>
#include <memory>
#include <optional>
#include <thread>
#include <utility>

#include "src/base/assert.h"
#include "src/base/string_util.h"
#include "src/base/watchdog.h"
#include "src/harness/run_matrix.h"
#include "src/harness/thread_pool.h"
#include "src/net/socket.h"
#include "src/sched/factory.h"
#include "src/smp/machine.h"
#include "src/workloads/volano.h"

namespace elsc {

namespace {

// Key mixed into DeriveSeed so node seeds are a stable function of
// (scenario seed, node index) — never of the node-to-shard assignment.
constexpr uint64_t kScaleSeedKey = 0x5ca1ab1e5ca1ab1eULL;
// Restart incarnations derive fresh seeds from this key + incarnation, so a
// rebuilt node replays a different (but deterministic) schedule.
constexpr uint64_t kScaleRestartKey = 0xfede7a7e00000000ULL;

// Sentinel room id marking a cumulative-ack message on the fabric (real
// rooms are >= 0).
constexpr int kAckRoom = -2;

// Beacon ids encode (incarnation << 48) | seq: a restarted transmitter's
// ids are strictly larger than anything its dead incarnation sent, so the
// receiver's gap-jump handles the incarnation switch like any other loss.
constexpr int kIncarnationShift = 48;

constexpr uint64_t kFnvOffset = 14695981039346656037ULL;
constexpr uint64_t kFnvPrime = 1099511628211ULL;

uint64_t FnvFold(uint64_t h, const std::string& s) {
  for (const char c : s) {
    h ^= static_cast<unsigned char>(c);
    h *= kFnvPrime;
  }
  return h;
}

struct ScaleNode;

// Federation relay, transmit side: every `gossip_period` the relay wakes
// and emits one progress beacon per owned room to the node's ring
// successor. The beacons are the scenario's cross-node traffic; the relay
// itself is scheduler-visible load (it sleeps, wakes, and burns CPU like
// any other server thread). Exits once the local chat is complete — there
// is no more progress to report.
//
// With the failure model armed, beacons additionally carry link-sequence
// ids and the relay keeps a bounded buffer of unacked beacons, re-emitting
// them on timeout under the retransmit backoff policy (a TCP-lite tail on
// top of the fire-and-forget gossip). Fault-free configs never enter any of
// those branches, byte for byte.
class FederationTx : public TaskBehavior {
 public:
  explicit FederationTx(ScaleNode* node);
  Segment NextSegment(Machine& machine, Task& task) override;

 private:
  struct Unacked {
    uint64_t id = 0;
    Message msg;
    int attempts = 1;         // Emissions so far (1 = the original send).
    Cycles next_retx_at = 0;  // Global time of the next retransmission.
  };

  ScaleNode* node_;
  std::deque<Unacked> unacked_;
  Cycles next_beacon_at_ = 0;
  uint64_t next_beacon_id_ = 0;
};

// Federation relay, receive side: drains the node's fabric inbox, paying a
// processing cost per beacon, and exits on EOF (the coordinator closes
// every inbox once the whole federation's chat is complete and all
// in-flight deliveries have landed).
//
// With the failure model armed it runs the receive half of the recovery
// protocol: in-order beacons are processed and cumulatively acked, small
// gaps are buffered for reordering (duplicated fabric deliveries arrive at
// the same time but a retransmit can overtake a slower original), wide gaps
// — including a restarted predecessor's incarnation jump — are jumped past,
// and duplicates are discarded by id.
class FederationRx : public TaskBehavior {
 public:
  explicit FederationRx(ScaleNode* node) : node_(node) {}
  Segment NextSegment(Machine& machine, Task& task) override;

 private:
  Segment Process(Machine& machine, const Message& beacon);
  void Deliver(const Message& beacon);

  ScaleNode* node_;
  uint64_t cum_ = 0;         // Highest contiguously-processed beacon id.
  uint64_t last_acked_ = 0;  // cum_ value carried by the last ack sent.
  std::map<uint64_t, Message> reorder_;  // Out-of-order beacons, bounded.
};

// One node of the federation: an independent Machine simulating its rooms,
// plus the fabric endpoints. Owned by the coordinator; advanced by exactly
// one shard thread per window; destroyed (streaming fold) at the barrier
// where its workload completes. Under the failure model a node can
// additionally be torn down mid-scenario (crash) and rebuilt with a derived
// seed (restart) — the counters below deliberately live here, not in the
// machine, so they survive incarnations.
struct ScaleNode {
  int index = 0;
  int first_room = 0;
  int dst_node = 0;  // Ring successor receiving this node's beacons.
  int src_node = 0;  // Ring predecessor; acks flow back to it.
  const ScaleConfig* config = nullptr;
  FabricRouter* router = nullptr;  // Null when gossip is disabled.
  bool armed = false;              // config->faults.Enabled().

  std::unique_ptr<Machine> machine;
  std::unique_ptr<VolanoWorkload> volano;
  std::unique_ptr<SimSocket> inbox;
  std::unique_ptr<FederationTx> tx;
  std::unique_ptr<FederationRx> rx;

  // Global room ids this incarnation simulates (restart re-runs only the
  // unfinished rooms; index 0 pairs with volano room 0, and so on).
  std::vector<int> room_ids;
  // A restarted machine starts at local t = 0; global time = offset + local.
  Cycles clock_offset = 0;
  int incarnation = 0;

  // Federation counters (single-writer: only this node's tasks / delivery
  // events touch them, and those all run on this node's shard thread).
  uint64_t beacons_sent = 0;
  uint64_t beacons_received = 0;
  uint64_t inbox_overflows = 0;
  uint64_t late_writes = 0;
  uint64_t last_remote_progress = 0;  // Payload of the newest beacon seen.
  // Recovery-protocol counters (persist across restarts).
  uint64_t tx_acked = 0;  // Cumulative ack from the ring successor.
  uint64_t retransmits = 0;
  uint64_t retx_abandoned = 0;
  uint64_t dup_discards = 0;
  uint64_t acks_sent = 0;
  uint64_t acks_received = 0;

  // Crash lifecycle (coordinator-side).
  bool down = false;
  uint64_t restart_window = 0;
  uint64_t crashes = 0;
  // Finished-room quotas banked from dead incarnations — their deliveries
  // happened and stay counted; only unfinished rooms re-run.
  uint64_t banked_sent = 0;
  uint64_t banked_delivered = 0;
  uint64_t chat_messages_lost = 0;      // Partial-room work thrown away.
  uint64_t crash_inflight_dropped = 0;  // Fabric deliveries killed mid-air.
  // Arrivals scheduled on this incarnation's engine that have not landed
  // yet (incremented by the coordinator sink at barriers, decremented by
  // the delivery event on the shard thread — phases never overlap).
  uint64_t pending_deliveries = 0;
  RunStats carried_stats;  // Stats of dead incarnations, merged at fold.
  bool has_carried_stats = false;

  bool chat_done = false;
  uint64_t completed_window = 0;

  Cycles GlobalNow() const { return clock_offset + machine->Now(); }
};

// Jitter key for one unacked beacon's retransmission schedule.
uint64_t RetxKey(const ScaleNode& node, uint64_t id) {
  return (static_cast<uint64_t>(node.index) << 32) ^ id;
}

FederationTx::FederationTx(ScaleNode* node)
    : node_(node),
      next_beacon_id_(static_cast<uint64_t>(node->incarnation)
                      << kIncarnationShift) {}

Segment FederationTx::NextSegment(Machine& machine, Task& task) {
  (void)task;
  const ScaleConfig& cfg = *node_->config;
  const bool armed = node_->armed;
  if (armed) {
    // Cumulative ack from the ring successor: everything at or below it
    // arrived — purge it from the retransmission buffer.
    while (!unacked_.empty() && unacked_.front().id <= node_->tx_acked) {
      unacked_.pop_front();
    }
  }
  if (node_->volano->ChatComplete() &&
      (!armed || !cfg.retransmit || unacked_.empty() ||
       node_->router->closed())) {
    // Nothing more to report — though an armed transmitter lingers while
    // unacked beacons might still need retransmission, until the router
    // closes (the coordinator closes it at a barrier; no shard is running,
    // so this read is race-free).
    return Segment::Exit(cfg.chat.syscall_cycles);
  }
  const Cycles now = machine.Now();
  if (next_beacon_at_ == 0) {
    next_beacon_at_ = cfg.gossip_period;
  }
  if (now < next_beacon_at_) {
    return Segment::Sleep(cfg.chat.syscall_cycles, next_beacon_at_ - now);
  }
  const Cycles global_now = node_->clock_offset + now;
  Cycles emissions = 0;
  if (armed && cfg.retransmit) {
    // Timeout-driven retransmission: anything unacked past its deadline is
    // re-emitted under the backoff policy; exhausted retries abandon.
    for (size_t i = 0; i < unacked_.size();) {
      Unacked& u = unacked_[i];
      if (global_now < u.next_retx_at) {
        ++i;
        continue;
      }
      if (cfg.retransmit_backoff.ShouldAbandon(u.attempts)) {
        ++node_->retx_abandoned;
        unacked_.erase(unacked_.begin() + static_cast<long>(i));
        continue;
      }
      u.msg.sent_at = global_now;
      node_->router->Emit(node_->index, node_->dst_node, global_now, u.msg);
      ++node_->retransmits;
      ++u.attempts;
      u.next_retx_at =
          global_now + cfg.retransmit_backoff.Delay(RetxKey(*node_, u.id),
                                                    u.attempts);
      ++emissions;
      ++i;
    }
  }
  if (!node_->volano->ChatComplete()) {
    const int owned_rooms = node_->volano->config().rooms;
    for (int r = 0; r < owned_rooms; ++r) {
      Message beacon;
      beacon.id = ++next_beacon_id_;
      beacon.sender = node_->index;
      beacon.room = node_->room_ids[static_cast<size_t>(r)];
      beacon.sent_at = global_now;
      beacon.payload = node_->volano->messages_delivered();
      node_->router->Emit(node_->index, node_->dst_node, global_now, beacon);
      ++node_->beacons_sent;
      ++emissions;
      if (armed && cfg.retransmit) {
        Unacked u;
        u.id = beacon.id;
        u.msg = beacon;
        u.next_retx_at =
            global_now + cfg.retransmit_backoff.Delay(RetxKey(*node_, u.id), 1);
        unacked_.push_back(u);
        while (unacked_.size() > cfg.retransmit_buffer) {
          // Bounded buffer: the oldest unacked beacon is given up on.
          unacked_.pop_front();
          ++node_->retx_abandoned;
        }
      }
    }
  }
  next_beacon_at_ = now + cfg.gossip_period;
  return Segment::RunAgain(cfg.beacon_cycles *
                           (emissions == 0 ? 1 : emissions));
}

Segment FederationRx::NextSegment(Machine& machine, Task& task) {
  (void)task;
  const ScaleConfig& cfg = *node_->config;
  SimSocket* inbox = node_->inbox.get();
  Message beacon;
  switch (inbox->TryReadMsg(machine, &beacon)) {
    case SockStatus::kOk:
      if (!node_->armed) {
        ++node_->beacons_received;
        node_->last_remote_progress = beacon.payload;
        return Segment::RunAgain(cfg.gossip_process_cycles);
      }
      return Process(machine, beacon);
    case SockStatus::kWouldBlock:
      if (node_->armed && cum_ > last_acked_) {
        // Inbox drained: return one cumulative ack covering everything
        // processed since the last ack (delayed-ack batching for free).
        Message ack;
        ack.id = cum_;
        ack.sender = node_->index;
        ack.room = kAckRoom;
        const Cycles global_now = node_->clock_offset + machine.Now();
        ack.sent_at = global_now;
        ack.payload = cum_;
        node_->router->Emit(node_->index, node_->src_node, global_now, ack);
        last_acked_ = cum_;
        ++node_->acks_sent;
        return Segment::RunAgain(cfg.beacon_cycles);
      }
      return Segment::Block(cfg.chat.syscall_cycles, &inbox->read_wait(),
                            [inbox] { return !inbox->ReadReady(); });
    default:  // kEof / kClosed / kReset: the federation shut down.
      return Segment::Exit(cfg.chat.syscall_cycles);
  }
}

void FederationRx::Deliver(const Message& beacon) {
  ++node_->beacons_received;
  node_->last_remote_progress = beacon.payload;
}

Segment FederationRx::Process(Machine& machine, const Message& beacon) {
  (void)machine;
  const ScaleConfig& cfg = *node_->config;
  if (beacon.room == kAckRoom) {
    // The successor's cumulative ack for our own transmissions.
    if (beacon.payload > node_->tx_acked) {
      node_->tx_acked = beacon.payload;
    }
    ++node_->acks_received;
    return Segment::RunAgain(cfg.chat.syscall_cycles);
  }
  const uint64_t id = beacon.id;
  if (id <= cum_ || reorder_.count(id) != 0) {
    ++node_->dup_discards;
    return Segment::RunAgain(cfg.chat.syscall_cycles);
  }
  uint64_t processed = 0;
  if (id == cum_ + 1) {
    Deliver(beacon);
    cum_ = id;
    ++processed;
  } else if (id > cum_ + cfg.recovery_gap_span ||
             reorder_.size() >= cfg.recovery_gap_span) {
    // Gap too wide (a restarted predecessor's incarnation jump is 2^48) or
    // the reorder buffer is full: jump past it. Buffered beacons below the
    // jump target still get processed in id order; the rest of the gap is
    // this run's deliveries_lost.
    for (auto it = reorder_.begin(); it != reorder_.end() && it->first < id;) {
      Deliver(it->second);
      ++processed;
      it = reorder_.erase(it);
    }
    Deliver(beacon);
    cum_ = id;
    ++processed;
  } else {
    reorder_.emplace(id, beacon);
    return Segment::RunAgain(cfg.chat.syscall_cycles);
  }
  // Drain whatever the new cum_ made contiguous.
  while (!reorder_.empty() && reorder_.begin()->first == cum_ + 1) {
    Deliver(reorder_.begin()->second);
    ++cum_;
    ++processed;
    reorder_.erase(reorder_.begin());
  }
  return Segment::RunAgain(cfg.gossip_process_cycles *
                           static_cast<Cycles>(processed));
}

// Per-node RunStats snapshot (the sharded analog of the facade's
// CollectStats), memory block included.
RunStats NodeRunStats(const ScaleNode& node) {
  RunStats stats;
  const Machine& machine = *node.machine;
  stats.sched = machine.scheduler().stats();
  stats.machine = machine.stats();
  stats.events = machine.engine().queue_stats();
  stats.memory.task_arena_bytes = machine.task_arena_bytes();
  stats.memory.task_arena_chunks = machine.task_arena_stats().chunks;
  stats.memory.peak_live_sockets =
      node.volano->SocketCount() + (node.inbox ? 1 : 0);
  stats.elapsed_sec = CyclesToSec(machine.Now());
  return stats;
}

// Builds (or rebuilds, incarnation > 0) a node's simulated machine, chat
// workload over node->room_ids, inbox, and federation relays, and starts it.
void BootNode(ScaleNode* node, const ScaleConfig& config) {
  const uint64_t seed_key =
      node->incarnation == 0
          ? kScaleSeedKey
          : kScaleRestartKey + static_cast<uint64_t>(node->incarnation);
  MachineConfig mc = MakeMachineConfig(
      config.kernel, config.scheduler,
      DeriveSeed(config.seed, seed_key, static_cast<uint64_t>(node->index)));
  node->machine = std::make_unique<Machine>(mc);

  VolanoConfig chat = config.chat;
  chat.rooms = static_cast<int>(node->room_ids.size());
  node->volano = std::make_unique<VolanoWorkload>(*node->machine, chat);
  node->volano->Setup();

  if (node->router != nullptr) {
    node->inbox = std::make_unique<SimSocket>(
        node->incarnation == 0
            ? StrFormat("node%d.fabric.in", node->index)
            : StrFormat("node%d.fabric.in#%d", node->index, node->incarnation),
        config.fabric_inbox_capacity);
    node->tx = std::make_unique<FederationTx>(node);
    node->rx = std::make_unique<FederationRx>(node);
    // The relays are server-process threads: share the server JVM's mm.
    TaskParams params;
    params.mm = node->volano->server_mm();
    params.name = StrFormat("node%d.fedtx", node->index);
    params.behavior = node->tx.get();
    node->machine->CreateTask(params);
    params.name = StrFormat("node%d.fedrx", node->index);
    params.behavior = node->rx.get();
    node->machine->CreateTask(params);
  }
  node->machine->Start();
}

// Resolves the per-window wall-clock budget: explicit config value, else
// the supervisor's ELSC_CELL_TIMEOUT_MS, else off.
double ResolveWindowBudget(const ScaleConfig& config) {
  double budget = config.window_wall_budget_sec;
  if (budget == 0.0) {
    const char* env = std::getenv("ELSC_CELL_TIMEOUT_MS");
    budget = env != nullptr ? std::atof(env) / 1000.0 : 0.0;
  }
  return budget > 0.0 ? budget : 0.0;
}

}  // namespace

ScaleRun RunShardedVolano(const ScaleConfig& config, int shards) {
  const int num_nodes = config.nodes();
  ELSC_CHECK_MSG(config.rooms >= 1 && num_nodes >= 1, "scale scenario needs rooms");
  ELSC_CHECK_MSG(config.window > 0, "scale window must be positive");
  const Cycles window = config.window;
  const Cycles latency =
      config.fabric_latency == 0 ? window : config.fabric_latency;
  ELSC_CHECK_MSG(latency >= window,
                 "conservative rule: fabric latency must be >= the window");
  const bool gossip = config.gossip_period > 0;
  const bool armed = config.faults.Enabled();
  shards = std::clamp(shards <= 0 ? 1 : shards, 1, num_nodes);

  ScaleRun run;
  run.nodes = num_nodes;
  run.shards = shards;
  run.rooms = static_cast<uint64_t>(config.rooms);
  run.connections = config.connections();
  run.fault_model = armed;
  run.digest = kFnvOffset;

  FabricRouter router(num_nodes, window, latency);
  if (armed) {
    router.ArmFaults(&config.faults);
  }
  if (config.fabric_lane_capacity > 0) {
    router.SetLaneCapacity(config.fabric_lane_capacity);
  }

  // ---- Build the federation ----
  std::vector<std::unique_ptr<ScaleNode>> nodes;
  nodes.reserve(static_cast<size_t>(num_nodes));
  for (int i = 0; i < num_nodes; ++i) {
    auto node = std::make_unique<ScaleNode>();
    node->index = i;
    node->first_room = i * config.rooms_per_node;
    node->dst_node = (i + 1) % num_nodes;
    node->src_node = (i + num_nodes - 1) % num_nodes;
    node->config = &config;
    node->router = gossip ? &router : nullptr;
    node->armed = armed;
    const int owned =
        std::min(config.rooms_per_node, config.rooms - node->first_room);
    node->room_ids.reserve(static_cast<size_t>(owned));
    for (int r = 0; r < owned; ++r) {
      node->room_ids.push_back(node->first_room + r);
    }
    BootNode(node.get(), config);
    nodes.push_back(std::move(node));
  }

  // ---- Delivery sink: schedules a beacon's arrival on its destination ----
  // Runs on the coordinator thread at barriers (no shard is advancing), so
  // ScheduleAt into the destination engine is race-free; the event itself
  // fires on whichever shard advances the destination through `arrival`.
  const auto sink = [&nodes](const FabricMessage& msg,
                             Cycles arrival) -> FabricRouter::Delivery {
    ScaleNode* dst = nodes[static_cast<size_t>(msg.dst_node)].get();
    if (dst == nullptr) {
      return FabricRouter::Delivery::kRefused;
    }
    if (dst->down || dst->machine == nullptr) {
      return FabricRouter::Delivery::kDown;
    }
    ++dst->pending_deliveries;
    // A restarted machine's clock is offset: schedule at local time.
    dst->machine->engine().ScheduleAt(
        arrival - dst->clock_offset, [dst, payload = msg.payload] {
          --dst->pending_deliveries;
          switch (dst->inbox->TryWriteMsg(*dst->machine, payload)) {
            case SockStatus::kOk:
              break;
            case SockStatus::kWouldBlock:
              // Bounded inbox full: the beacon is dropped like a datagram
              // against a full receive buffer.
              ++dst->inbox_overflows;
              break;
            default:  // kClosed / kReset: delivery raced the shutdown.
              ++dst->late_writes;
              break;
          }
        });
    return FabricRouter::Delivery::kDelivered;
  };

  // ---- Conservative time-windowed lock-step ----
  std::unique_ptr<ThreadPool> pool;
  if (shards > 1) {
    pool = std::make_unique<ThreadPool>(shards);
  }
  const double wall_budget = ResolveWindowBudget(config);

  int live = num_nodes;
  int chats_done = 0;
  bool all_completed = true;
  Cycles inbox_close_at = 0;  // 0 = fabric still open.
  bool inboxes_closed = !gossip;
  uint64_t window_index = 0;

  // Folds every still-live node as failed (partial per-node stats included)
  // and stamps the run's failure — the deadline and watchdog exits.
  const auto fold_failed = [&](const char* tag, const std::string& why) {
    for (size_t n = 0; n < nodes.size(); ++n) {
      ScaleNode* node = nodes[n].get();
      if (node == nullptr) {
        continue;
      }
      RunStats node_stats;
      if (node->machine != nullptr) {
        node_stats = NodeRunStats(*node);
        run.messages_sent += node->volano->messages_sent();
        run.messages_delivered += node->volano->messages_delivered();
      }
      if (node->has_carried_stats) {
        MergeRunStats(&node->carried_stats, node_stats);
        node_stats = node->carried_stats;
      }
      node_stats.failed = true;
      run.messages_sent += node->banked_sent;
      run.messages_delivered += node->banked_delivered;
      run.beacons_sent += node->beacons_sent;
      run.beacons_received += node->beacons_received;
      run.inbox_overflows += node->inbox_overflows;
      run.late_writes += node->late_writes;
      run.retransmits += node->retransmits;
      run.retx_abandoned += node->retx_abandoned;
      run.dup_discards += node->dup_discards;
      run.acks_sent += node->acks_sent;
      run.acks_received += node->acks_received;
      run.chat_messages_lost += node->chat_messages_lost;
      run.crash_inflight_dropped += node->crash_inflight_dropped;
      MergeRunStats(&run.stats, node_stats);
      run.digest = FnvFold(
          run.digest,
          StrFormat("n%d@%s|", node->index, tag) + RunStatsDigest(node_stats) +
              StrFormat("|fed:%llu,%llu,%llu,%llu;",
                        static_cast<unsigned long long>(node->beacons_sent),
                        static_cast<unsigned long long>(node->beacons_received),
                        static_cast<unsigned long long>(node->inbox_overflows),
                        static_cast<unsigned long long>(node->late_writes)));
      nodes[n].reset();
      --live;
    }
    all_completed = false;
    run.stats.failed = true;
    if (run.stats.failure.empty()) {
      run.stats.failure = why;
    }
  };

  while (live > 0) {
    ++window_index;
    const Cycles barrier = static_cast<Cycles>(window_index) * window;

    // Advance every live node to the barrier. Node->shard assignment is
    // round-robin by node index; any assignment yields identical results
    // (nodes only interact through the fabric, drained below). Each shard
    // thread (and the serial loop) arms a per-window wall-clock watchdog:
    // a livelocked node fails the federation instead of hanging it.
    bool wall_timeout = false;
    try {
      if (pool != nullptr) {
        for (int s = 0; s < shards; ++s) {
          pool->Submit([&nodes, s, shards, barrier, wall_budget] {
            std::optional<CellWatchdog> dog;
            if (wall_budget > 0.0) {
              dog.emplace(wall_budget);
            }
            for (size_t n = static_cast<size_t>(s); n < nodes.size();
                 n += static_cast<size_t>(shards)) {
              ScaleNode* node = nodes[n].get();
              if (node != nullptr && !node->down) {
                node->machine->engine().RunUntil(barrier - node->clock_offset);
              }
            }
          });
        }
        pool->Wait();  // Rethrows the first shard exception, if any.
      } else {
        std::optional<CellWatchdog> dog;
        if (wall_budget > 0.0) {
          dog.emplace(wall_budget);
        }
        for (auto& node : nodes) {
          if (node != nullptr && !node->down) {
            node->machine->engine().RunUntil(barrier - node->clock_offset);
          }
        }
      }
    } catch (const CellDeadlineExceeded&) {
      if (wall_budget <= 0.0) {
        throw;  // The supervisor's cell watchdog, not ours.
      }
      wall_timeout = true;
    }
    if (wall_timeout) {
      fold_failed("watchdog",
                  StrFormat("federation watchdog: window %llu exceeded %.3fs "
                            "wall-clock",
                            static_cast<unsigned long long>(window_index),
                            wall_budget));
      break;
    }

    // ---- Barrier (coordinator, single-threaded) ----
    // Failure plan, step 1 — crashes scheduled for this window. The node's
    // engine is torn down mid-scenario: queued inbox traffic is discarded
    // (peers see a reset inbox), scheduled arrivals die with the engine,
    // finished rooms' delivery quotas are banked, partial rooms are lost
    // and will re-run at restart.
    if (armed) {
      for (auto& owner : nodes) {
        ScaleNode* node = owner.get();
        if (node == nullptr || node->down || node->machine == nullptr ||
            node->crashes > 0 || node->volano->ChatComplete() ||
            !config.faults.NodeCrashes(node->index) ||
            config.faults.CrashWindow(node->index) != window_index) {
          continue;
        }
        node->inbox->ResetByPeer(*node->machine);
        node->crash_inflight_dropped +=
            node->pending_deliveries + node->inbox->stats().discarded;
        node->pending_deliveries = 0;
        MergeRunStats(&node->carried_stats, NodeRunStats(*node));
        node->has_carried_stats = true;
        const VolanoConfig& chat = node->volano->config();
        const uint64_t room_quota_delivered =
            static_cast<uint64_t>(chat.users_per_room) * chat.users_per_room *
            chat.messages_per_user;
        const uint64_t room_quota_sent =
            static_cast<uint64_t>(chat.users_per_room) * chat.messages_per_user;
        std::vector<int> unfinished;
        for (int r = 0; r < chat.rooms; ++r) {
          if (node->volano->RoomComplete(r)) {
            node->banked_delivered += room_quota_delivered;
            node->banked_sent += room_quota_sent;
          } else {
            node->chat_messages_lost += node->volano->RoomDelivered(r);
            unfinished.push_back(node->room_ids[static_cast<size_t>(r)]);
          }
        }
        node->room_ids = std::move(unfinished);
        // Teardown in the member-destruction order a folded node uses.
        node->rx.reset();
        node->tx.reset();
        node->inbox.reset();
        node->volano.reset();
        node->machine.reset();
        node->down = true;
        node->restart_window =
            window_index + config.faults.DownWindows(node->index);
        ++node->crashes;
        ++run.node_crashes;
      }
      // Step 2 — restarts due this window: rebuild the node with a derived
      // seed over its unfinished rooms; its fresh engine starts at local
      // t = 0, offset to the current barrier.
      for (auto& owner : nodes) {
        ScaleNode* node = owner.get();
        if (node == nullptr || !node->down ||
            node->restart_window != window_index) {
          continue;
        }
        ++node->incarnation;
        node->clock_offset = barrier;
        node->tx_acked = 0;  // The new incarnation's ids restart the link.
        BootNode(node, config);
        node->down = false;
        ++run.node_restarts;
      }
      for (const auto& node : nodes) {
        if (node != nullptr && node->down) {
          ++run.windows_degraded;
          break;
        }
      }
    }

    // Memory high-water sampling across the live federation.
    uint64_t live_tasks = 0;
    uint64_t arena_bytes = 0;
    uint64_t sockets = 0;
    for (const auto& node : nodes) {
      if (node == nullptr || node->machine == nullptr) {
        continue;
      }
      live_tasks += node->machine->live_tasks();
      arena_bytes += node->machine->task_arena_bytes();
      sockets += node->volano->SocketCount() + (node->inbox ? 1 : 0);
    }
    run.peak_live_tasks = std::max(run.peak_live_tasks, live_tasks);
    run.peak_task_arena_bytes = std::max(run.peak_task_arena_bytes, arena_bytes);
    run.peak_live_sockets = std::max(run.peak_live_sockets, sockets);
    run.peak_live_nodes =
        std::max(run.peak_live_nodes, static_cast<uint64_t>(live));

    // Cross-node traffic exchange (deterministic node/emission order).
    if (gossip) {
      router.Exchange(barrier, sink);
    }

    // Chat-completion scan; once the whole federation's chat is done the
    // fabric closes, and after one more latency the inboxes EOF so the
    // receive relays drain whatever is still in flight and exit.
    for (const auto& node : nodes) {
      if (node != nullptr && node->machine != nullptr && !node->chat_done &&
          node->volano->ChatComplete()) {
        node->chat_done = true;
        ++chats_done;
      }
    }
    if (gossip && !router.closed() && chats_done == num_nodes) {
      router.Close();
      inbox_close_at = barrier + latency;
    }
    if (!inboxes_closed && inbox_close_at != 0 && barrier >= inbox_close_at) {
      for (const auto& node : nodes) {
        if (node != nullptr && node->machine != nullptr) {
          node->inbox->Close(*node->machine);
        }
      }
      inboxes_closed = true;
    }

    // Streaming fold: finished nodes are folded into the aggregate in node
    // order and destroyed — constant live state, not O(total nodes).
    for (size_t n = 0; n < nodes.size(); ++n) {
      ScaleNode* node = nodes[n].get();
      if (node == nullptr || node->machine == nullptr ||
          !node->volano->Done()) {
        continue;
      }
      node->completed_window = window_index;
      RunStats node_stats = NodeRunStats(*node);
      if (node->has_carried_stats) {
        // Dead incarnations' partial stats ride along with the final one.
        MergeRunStats(&node->carried_stats, node_stats);
        node_stats = node->carried_stats;
      }
      const VolanoResult result = node->volano->Result();
      all_completed = all_completed && result.completed && !node_stats.failed;
      run.messages_sent += result.messages_sent + node->banked_sent;
      run.messages_delivered += result.messages_delivered + node->banked_delivered;
      run.beacons_sent += node->beacons_sent;
      run.beacons_received += node->beacons_received;
      run.inbox_overflows += node->inbox_overflows;
      run.late_writes += node->late_writes;
      run.retransmits += node->retransmits;
      run.retx_abandoned += node->retx_abandoned;
      run.dup_discards += node->dup_discards;
      run.acks_sent += node->acks_sent;
      run.acks_received += node->acks_received;
      run.chat_messages_lost += node->chat_messages_lost;
      run.crash_inflight_dropped += node->crash_inflight_dropped;
      MergeRunStats(&run.stats, node_stats);
      std::string record =
          StrFormat("n%d@%llu|", node->index,
                    static_cast<unsigned long long>(node->completed_window)) +
          RunStatsDigest(node_stats) +
          StrFormat("|chat:%llu,%llu,%d|fed:%llu,%llu,%llu,%llu;",
                    static_cast<unsigned long long>(result.messages_sent),
                    static_cast<unsigned long long>(result.messages_delivered),
                    result.completed ? 1 : 0,
                    static_cast<unsigned long long>(node->beacons_sent),
                    static_cast<unsigned long long>(node->beacons_received),
                    static_cast<unsigned long long>(node->inbox_overflows),
                    static_cast<unsigned long long>(node->late_writes));
      if (run.fault_model) {
        // The recovery block only exists under an armed plan — fault-free
        // fold records stay byte-identical to the pre-failure-model layout.
        record += StrFormat(
            "|rec:%d,%llu,%llu,%llu,%llu,%llu,%llu,%llu,%llu;",
            node->incarnation,
            static_cast<unsigned long long>(node->banked_delivered),
            static_cast<unsigned long long>(node->retransmits),
            static_cast<unsigned long long>(node->retx_abandoned),
            static_cast<unsigned long long>(node->dup_discards),
            static_cast<unsigned long long>(node->acks_sent),
            static_cast<unsigned long long>(node->acks_received),
            static_cast<unsigned long long>(node->chat_messages_lost),
            static_cast<unsigned long long>(node->crash_inflight_dropped));
      }
      run.digest = FnvFold(run.digest, record);
      nodes[n].reset();
      --live;
    }

    // Simulated-time safety net: fold whatever is still live as failed,
    // partial per-node stats and all.
    if (live > 0 && barrier >= config.deadline) {
      fold_failed("deadline",
                  StrFormat("scale deadline exceeded: %d node(s) still live "
                            "at window %llu",
                            num_nodes - chats_done,
                            static_cast<unsigned long long>(window_index)));
      break;
    }
  }

  run.windows = window_index;
  run.completed = all_completed;
  run.fabric = router.stats();
  run.deliveries_lost = run.beacons_sent > run.beacons_received
                            ? run.beacons_sent - run.beacons_received
                            : 0;
  run.elapsed_sec = run.stats.elapsed_sec;
  run.throughput = run.elapsed_sec > 0
                       ? static_cast<double>(run.messages_delivered) / run.elapsed_sec
                       : 0.0;
  // Goodput under faults: deliveries per simulated second of *federation*
  // runtime — downtime, degraded windows, and re-run rooms all stretch the
  // denominator, unlike throughput's max-node-elapsed.
  const double federation_sec = CyclesToSec(static_cast<Cycles>(run.windows) * window);
  run.goodput = federation_sec > 0
                    ? static_cast<double>(run.messages_delivered) / federation_sec
                    : 0.0;
  run.digest = FnvFold(
      run.digest,
      StrFormat("windows:%llu|fabric:%llu,%llu,%llu,%llu|peaks:%llu,%llu,%llu,%llu",
                static_cast<unsigned long long>(run.windows),
                static_cast<unsigned long long>(run.fabric.emitted),
                static_cast<unsigned long long>(run.fabric.routed),
                static_cast<unsigned long long>(run.fabric.refused),
                static_cast<unsigned long long>(run.fabric.dropped_closed),
                static_cast<unsigned long long>(run.peak_live_tasks),
                static_cast<unsigned long long>(run.peak_live_nodes),
                static_cast<unsigned long long>(run.peak_task_arena_bytes),
                static_cast<unsigned long long>(run.peak_live_sockets)));
  if (run.fault_model) {
    run.digest = FnvFold(
        run.digest,
        StrFormat("|chaos:%llu,%llu,%llu,%llu,%llu,%llu,%llu|drops:%llu,%llu,%llu,%llu,%llu",
                  static_cast<unsigned long long>(run.node_crashes),
                  static_cast<unsigned long long>(run.node_restarts),
                  static_cast<unsigned long long>(run.windows_degraded),
                  static_cast<unsigned long long>(run.deliveries_lost),
                  static_cast<unsigned long long>(run.retransmits),
                  static_cast<unsigned long long>(run.retx_abandoned),
                  static_cast<unsigned long long>(run.dup_discards),
                  static_cast<unsigned long long>(run.fabric.dropped_loss),
                  static_cast<unsigned long long>(run.fabric.dropped_partition),
                  static_cast<unsigned long long>(run.fabric.dropped_crashed),
                  static_cast<unsigned long long>(run.fabric.dropped_lane_overflow),
                  static_cast<unsigned long long>(run.fabric.duplicated)));
  }
  return run;
}

std::string ScaleRunSignature(const ScaleRun& run) {
  std::string sig = StrFormat(
      "scale:%016llx|nodes:%d|windows:%llu|sent:%llu|delivered:%llu|"
      "beacons:%llu/%llu|drops:%llu+%llu|peak_tasks:%llu|peak_arena:%llu|"
      "elapsed:%a|completed:%d",
      static_cast<unsigned long long>(run.digest), run.nodes,
      static_cast<unsigned long long>(run.windows),
      static_cast<unsigned long long>(run.messages_sent),
      static_cast<unsigned long long>(run.messages_delivered),
      static_cast<unsigned long long>(run.beacons_sent),
      static_cast<unsigned long long>(run.beacons_received),
      static_cast<unsigned long long>(run.inbox_overflows),
      static_cast<unsigned long long>(run.late_writes),
      static_cast<unsigned long long>(run.peak_live_tasks),
      static_cast<unsigned long long>(run.peak_task_arena_bytes),
      run.elapsed_sec, run.completed ? 1 : 0);
  if (run.fault_model) {
    sig += StrFormat(
        "|crashes:%llu|restarts:%llu|degraded:%llu|lost:%llu|retx:%llu+%llu|"
        "dupdrop:%llu|acks:%llu/%llu|goodput:%a",
        static_cast<unsigned long long>(run.node_crashes),
        static_cast<unsigned long long>(run.node_restarts),
        static_cast<unsigned long long>(run.windows_degraded),
        static_cast<unsigned long long>(run.deliveries_lost),
        static_cast<unsigned long long>(run.retransmits),
        static_cast<unsigned long long>(run.retx_abandoned),
        static_cast<unsigned long long>(run.dup_discards),
        static_cast<unsigned long long>(run.acks_sent),
        static_cast<unsigned long long>(run.acks_received), run.goodput);
  }
  if (!run.stats.failure.empty()) {
    sig += "|failure:" + run.stats.failure;
  }
  return sig;
}

std::string RenderScaleJson(const std::vector<ScaleCell>& cells, uint64_t seed,
                            bool include_timing) {
  std::string out;
  out += StrFormat("{\n  \"seed\": %llu,\n  \"cells\": [\n",
                   static_cast<unsigned long long>(seed));
  for (size_t i = 0; i < cells.size(); ++i) {
    const ScaleCell& cell = cells[i];
    const ScaleRun& r = cell.run;
    // The failure-model block renders only for armed plans: fault-free
    // cells keep the exact pre-failure-model byte layout.
    std::string fault_block;
    if (r.fault_model) {
      fault_block = StrFormat(
          "     \"failure_model\": {\"node_crashes\": %llu, "
          "\"node_restarts\": %llu, \"windows_degraded\": %llu, "
          "\"deliveries_lost\": %llu, \"retransmits\": %llu, "
          "\"retx_abandoned\": %llu, \"dup_discards\": %llu, "
          "\"acks_sent\": %llu, \"acks_received\": %llu, "
          "\"crash_inflight_dropped\": %llu, \"chat_messages_lost\": %llu, "
          "\"goodput\": %.4f,\n"
          "      \"fabric_drops\": {\"loss\": %llu, \"partition\": %llu, "
          "\"crashed\": %llu, \"lane_overflow\": %llu, "
          "\"duplicated\": %llu}},\n",
          static_cast<unsigned long long>(r.node_crashes),
          static_cast<unsigned long long>(r.node_restarts),
          static_cast<unsigned long long>(r.windows_degraded),
          static_cast<unsigned long long>(r.deliveries_lost),
          static_cast<unsigned long long>(r.retransmits),
          static_cast<unsigned long long>(r.retx_abandoned),
          static_cast<unsigned long long>(r.dup_discards),
          static_cast<unsigned long long>(r.acks_sent),
          static_cast<unsigned long long>(r.acks_received),
          static_cast<unsigned long long>(r.crash_inflight_dropped),
          static_cast<unsigned long long>(r.chat_messages_lost), r.goodput,
          static_cast<unsigned long long>(r.fabric.dropped_loss),
          static_cast<unsigned long long>(r.fabric.dropped_partition),
          static_cast<unsigned long long>(r.fabric.dropped_crashed),
          static_cast<unsigned long long>(r.fabric.dropped_lane_overflow),
          static_cast<unsigned long long>(r.fabric.duplicated));
    }
    out += StrFormat(
        "    {\"kernel\": \"%s\", \"scheduler\": \"%s\", \"rooms\": %llu, "
        "\"connections\": %llu,\n"
        "     \"nodes\": %d, \"windows\": %llu,\n"
        "     \"messages_sent\": %llu, \"messages_delivered\": %llu, "
        "\"throughput\": %.4f, \"elapsed_sim_sec\": %.6f,\n"
        "     \"tasks_simulated\": %llu, \"events_simulated\": %llu,\n"
        "     \"federation\": {\"beacons_sent\": %llu, \"beacons_received\": %llu, "
        "\"inbox_overflows\": %llu, \"late_writes\": %llu, "
        "\"fabric_routed\": %llu, \"fabric_dropped_closed\": %llu},\n"
        "%s"
        "     \"memory\": {\"peak_live_tasks\": %llu, \"peak_live_nodes\": %llu, "
        "\"peak_task_arena_bytes\": %llu, \"peak_live_sockets\": %llu, "
        "\"total_task_arena_bytes\": %llu, \"total_arena_chunks\": %llu},\n"
        "     \"digest\": \"%016llx\", \"completed\": %s}%s\n",
        KernelConfigLabel(cell.config.kernel),
        SchedulerKindName(cell.config.scheduler),
        static_cast<unsigned long long>(r.rooms),
        static_cast<unsigned long long>(r.connections), r.nodes,
        static_cast<unsigned long long>(r.windows),
        static_cast<unsigned long long>(r.messages_sent),
        static_cast<unsigned long long>(r.messages_delivered), r.throughput,
        r.elapsed_sec,
        static_cast<unsigned long long>(r.stats.machine.tasks_created),
        static_cast<unsigned long long>(r.stats.events.fired),
        static_cast<unsigned long long>(r.beacons_sent),
        static_cast<unsigned long long>(r.beacons_received),
        static_cast<unsigned long long>(r.inbox_overflows),
        static_cast<unsigned long long>(r.late_writes),
        static_cast<unsigned long long>(r.fabric.routed),
        static_cast<unsigned long long>(r.fabric.dropped_closed),
        fault_block.c_str(),
        static_cast<unsigned long long>(r.peak_live_tasks),
        static_cast<unsigned long long>(r.peak_live_nodes),
        static_cast<unsigned long long>(r.peak_task_arena_bytes),
        static_cast<unsigned long long>(r.peak_live_sockets),
        static_cast<unsigned long long>(r.stats.memory.task_arena_bytes),
        static_cast<unsigned long long>(r.stats.memory.task_arena_chunks),
        static_cast<unsigned long long>(r.digest),
        r.completed ? "true" : "false", i + 1 < cells.size() ? "," : "");
  }
  out += "  ]";
  if (include_timing) {
    // Host measurements — everything above this block is simulated data and
    // byte-identical across shard/job counts; the CI determinism gate
    // renders with include_timing == false.
    struct rusage usage = {};
    getrusage(RUSAGE_SELF, &usage);
    out += StrFormat(
        ",\n  \"timing\": {\n    \"host_cpus\": %u, \"peak_rss_kb\": %llu,\n"
        "    \"cells\": [\n",
        std::thread::hardware_concurrency(),
        static_cast<unsigned long long>(usage.ru_maxrss));
    for (size_t i = 0; i < cells.size(); ++i) {
      const ScaleCell& cell = cells[i];
      out += StrFormat(
          "      {\"scheduler\": \"%s\", \"rooms\": %d, \"shards\": %d, "
          "\"wall_sec\": %.4f, \"tasks_per_wall_sec\": %.1f, "
          "\"events_per_wall_sec\": %.1f}%s\n",
          SchedulerKindName(cell.config.scheduler), cell.config.rooms,
          cell.run.shards, cell.wall_sec, cell.tasks_per_wall_sec,
          cell.events_per_wall_sec, i + 1 < cells.size() ? "," : "");
    }
    out += "    ]\n  }";
  }
  out += "\n}\n";
  return out;
}

}  // namespace elsc
