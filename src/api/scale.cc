#include "src/api/scale.h"

#include <sys/resource.h>

#include <algorithm>
#include <cstdio>
#include <cstdlib>
#include <deque>
#include <map>
#include <memory>
#include <optional>
#include <thread>
#include <utility>

#include "src/base/assert.h"
#include "src/base/atomic_file.h"
#include "src/base/string_util.h"
#include "src/base/watchdog.h"
#include "src/faults/kill_point.h"
#include "src/harness/run_matrix.h"
#include "src/harness/shutdown.h"
#include "src/harness/thread_pool.h"
#include "src/net/socket.h"
#include "src/sched/factory.h"
#include "src/smp/machine.h"
#include "src/workloads/volano.h"

namespace elsc {

namespace {

// Key mixed into DeriveSeed so node seeds are a stable function of
// (scenario seed, node index) — never of the node-to-shard assignment.
constexpr uint64_t kScaleSeedKey = 0x5ca1ab1e5ca1ab1eULL;
// Restart incarnations derive fresh seeds from this key + incarnation, so a
// rebuilt node replays a different (but deterministic) schedule.
constexpr uint64_t kScaleRestartKey = 0xfede7a7e00000000ULL;

// Sentinel room id marking a cumulative-ack message on the fabric (real
// rooms are >= 0).
constexpr int kAckRoom = -2;

// Beacon ids encode (incarnation << 48) | seq: a restarted transmitter's
// ids are strictly larger than anything its dead incarnation sent, so the
// receiver's gap-jump handles the incarnation switch like any other loss.
constexpr int kIncarnationShift = 48;

constexpr uint64_t kFnvOffset = 14695981039346656037ULL;
constexpr uint64_t kFnvPrime = 1099511628211ULL;

uint64_t FnvFold(uint64_t h, const std::string& s) {
  for (const char c : s) {
    h ^= static_cast<unsigned char>(c);
    h *= kFnvPrime;
  }
  return h;
}

struct ScaleNode;

// Federation relay, transmit side: every `gossip_period` the relay wakes
// and emits one progress beacon per owned room to the node's ring
// successor. The beacons are the scenario's cross-node traffic; the relay
// itself is scheduler-visible load (it sleeps, wakes, and burns CPU like
// any other server thread). Exits once the local chat is complete — there
// is no more progress to report.
//
// With the failure model armed, beacons additionally carry link-sequence
// ids and the relay keeps a bounded buffer of unacked beacons, re-emitting
// them on timeout under the retransmit backoff policy (a TCP-lite tail on
// top of the fire-and-forget gossip). Fault-free configs never enter any of
// those branches, byte for byte.
class FederationTx : public TaskBehavior {
 public:
  explicit FederationTx(ScaleNode* node);
  Segment NextSegment(Machine& machine, Task& task) override;

  // Canonical encoding of the transmit-side protocol state (beacon clock,
  // id counter, unacked retransmission buffer) for the checkpoint
  // verification line: replay must reconstruct this exactly.
  std::string EncodeState() const {
    std::string s =
        StrFormat("tx:%llu,%llu", static_cast<unsigned long long>(next_beacon_at_),
                  static_cast<unsigned long long>(next_beacon_id_));
    for (const Unacked& u : unacked_) {
      s += StrFormat(";%llu,%d,%llu", static_cast<unsigned long long>(u.id),
                     u.attempts, static_cast<unsigned long long>(u.next_retx_at));
    }
    return s;
  }

 private:
  struct Unacked {
    uint64_t id = 0;
    Message msg;
    int attempts = 1;         // Emissions so far (1 = the original send).
    Cycles next_retx_at = 0;  // Global time of the next retransmission.
  };

  ScaleNode* node_;
  std::deque<Unacked> unacked_;
  Cycles next_beacon_at_ = 0;
  uint64_t next_beacon_id_ = 0;
};

// Federation relay, receive side: drains the node's fabric inbox, paying a
// processing cost per beacon, and exits on EOF (the coordinator closes
// every inbox once the whole federation's chat is complete and all
// in-flight deliveries have landed).
//
// With the failure model armed it runs the receive half of the recovery
// protocol: in-order beacons are processed and cumulatively acked, small
// gaps are buffered for reordering (duplicated fabric deliveries arrive at
// the same time but a retransmit can overtake a slower original), wide gaps
// — including a restarted predecessor's incarnation jump — are jumped past,
// and duplicates are discarded by id.
class FederationRx : public TaskBehavior {
 public:
  explicit FederationRx(ScaleNode* node) : node_(node) {}
  Segment NextSegment(Machine& machine, Task& task) override;

  // Receive-side analog of FederationTx::EncodeState (cumulative cursor,
  // last ack sent, buffered out-of-order ids).
  std::string EncodeState() const {
    std::string s = StrFormat("rx:%llu,%llu", static_cast<unsigned long long>(cum_),
                              static_cast<unsigned long long>(last_acked_));
    for (const auto& entry : reorder_) {
      s += StrFormat(";%llu", static_cast<unsigned long long>(entry.first));
    }
    return s;
  }

 private:
  Segment Process(Machine& machine, const Message& beacon);
  void Deliver(const Message& beacon);

  ScaleNode* node_;
  uint64_t cum_ = 0;         // Highest contiguously-processed beacon id.
  uint64_t last_acked_ = 0;  // cum_ value carried by the last ack sent.
  std::map<uint64_t, Message> reorder_;  // Out-of-order beacons, bounded.
};

// One node of the federation: an independent Machine simulating its rooms,
// plus the fabric endpoints. Owned by the coordinator; advanced by exactly
// one shard thread per window; destroyed (streaming fold) at the barrier
// where its workload completes. Under the failure model a node can
// additionally be torn down mid-scenario (crash) and rebuilt with a derived
// seed (restart) — the counters below deliberately live here, not in the
// machine, so they survive incarnations.
struct ScaleNode {
  int index = 0;
  int first_room = 0;
  int dst_node = 0;  // Ring successor receiving this node's beacons.
  int src_node = 0;  // Ring predecessor; acks flow back to it.
  const ScaleConfig* config = nullptr;
  FabricRouter* router = nullptr;  // Null when gossip is disabled.
  bool armed = false;              // config->faults.Enabled().

  std::unique_ptr<Machine> machine;
  std::unique_ptr<VolanoWorkload> volano;
  std::unique_ptr<SimSocket> inbox;
  std::unique_ptr<FederationTx> tx;
  std::unique_ptr<FederationRx> rx;

  // Global room ids this incarnation simulates (restart re-runs only the
  // unfinished rooms; index 0 pairs with volano room 0, and so on).
  std::vector<int> room_ids;
  // A restarted machine starts at local t = 0; global time = offset + local.
  Cycles clock_offset = 0;
  int incarnation = 0;

  // Federation counters (single-writer: only this node's tasks / delivery
  // events touch them, and those all run on this node's shard thread).
  uint64_t beacons_sent = 0;
  uint64_t beacons_received = 0;
  uint64_t inbox_overflows = 0;
  uint64_t late_writes = 0;
  uint64_t last_remote_progress = 0;  // Payload of the newest beacon seen.
  // Recovery-protocol counters (persist across restarts).
  uint64_t tx_acked = 0;  // Cumulative ack from the ring successor.
  uint64_t retransmits = 0;
  uint64_t retx_abandoned = 0;
  uint64_t dup_discards = 0;
  uint64_t acks_sent = 0;
  uint64_t acks_received = 0;

  // Crash lifecycle (coordinator-side).
  bool down = false;
  uint64_t restart_window = 0;
  uint64_t crashes = 0;
  // Finished-room quotas banked from dead incarnations — their deliveries
  // happened and stay counted; only unfinished rooms re-run.
  uint64_t banked_sent = 0;
  uint64_t banked_delivered = 0;
  uint64_t chat_messages_lost = 0;      // Partial-room work thrown away.
  uint64_t crash_inflight_dropped = 0;  // Fabric deliveries killed mid-air.
  // Arrivals scheduled on this incarnation's engine that have not landed
  // yet (incremented by the coordinator sink at barriers, decremented by
  // the delivery event on the shard thread — phases never overlap).
  uint64_t pending_deliveries = 0;
  RunStats carried_stats;  // Stats of dead incarnations, merged at fold.
  bool has_carried_stats = false;

  bool chat_done = false;
  uint64_t completed_window = 0;

  // --- Checkpoint support (scale_ckpt.h) ---
  // Fabric deliveries the coordinator sink scheduled onto this incarnation's
  // engine, in sink-call order (duplicates appear twice). Restore replays
  // them verbatim at their original barriers. Only populated when
  // checkpointing is armed; cleared at every boot.
  bool log_arrivals = false;
  std::vector<CkptArrival> arrival_log;
  // Counter values at this incarnation's boot. Task- and event-mutated
  // counters cannot be serialized live (their current values are the sum of
  // boot value + this incarnation's deltas, and the deltas are reproduced by
  // replay) — so checkpoints store the boot snapshot and replay re-adds the
  // deltas. tx_acked needs no snapshot: it is always 0 at boot.
  struct FedSnapshot {
    uint64_t beacons_sent = 0;
    uint64_t beacons_received = 0;
    uint64_t inbox_overflows = 0;
    uint64_t late_writes = 0;
    uint64_t last_remote_progress = 0;
    uint64_t retransmits = 0;
    uint64_t retx_abandoned = 0;
    uint64_t dup_discards = 0;
    uint64_t acks_sent = 0;
    uint64_t acks_received = 0;
  };
  FedSnapshot boot_counters;

  Cycles GlobalNow() const { return clock_offset + machine->Now(); }
};

// Jitter key for one unacked beacon's retransmission schedule.
uint64_t RetxKey(const ScaleNode& node, uint64_t id) {
  return (static_cast<uint64_t>(node.index) << 32) ^ id;
}

FederationTx::FederationTx(ScaleNode* node)
    : node_(node),
      next_beacon_id_(static_cast<uint64_t>(node->incarnation)
                      << kIncarnationShift) {}

Segment FederationTx::NextSegment(Machine& machine, Task& task) {
  (void)task;
  const ScaleConfig& cfg = *node_->config;
  const bool armed = node_->armed;
  if (armed) {
    // Cumulative ack from the ring successor: everything at or below it
    // arrived — purge it from the retransmission buffer.
    while (!unacked_.empty() && unacked_.front().id <= node_->tx_acked) {
      unacked_.pop_front();
    }
  }
  if (node_->volano->ChatComplete() &&
      (!armed || !cfg.retransmit || unacked_.empty() ||
       node_->router->closed())) {
    // Nothing more to report — though an armed transmitter lingers while
    // unacked beacons might still need retransmission, until the router
    // closes (the coordinator closes it at a barrier; no shard is running,
    // so this read is race-free).
    return Segment::Exit(cfg.chat.syscall_cycles);
  }
  const Cycles now = machine.Now();
  if (next_beacon_at_ == 0) {
    next_beacon_at_ = cfg.gossip_period;
  }
  if (now < next_beacon_at_) {
    return Segment::Sleep(cfg.chat.syscall_cycles, next_beacon_at_ - now);
  }
  const Cycles global_now = node_->clock_offset + now;
  Cycles emissions = 0;
  if (armed && cfg.retransmit) {
    // Timeout-driven retransmission: anything unacked past its deadline is
    // re-emitted under the backoff policy; exhausted retries abandon.
    for (size_t i = 0; i < unacked_.size();) {
      Unacked& u = unacked_[i];
      if (global_now < u.next_retx_at) {
        ++i;
        continue;
      }
      if (cfg.retransmit_backoff.ShouldAbandon(u.attempts)) {
        ++node_->retx_abandoned;
        unacked_.erase(unacked_.begin() + static_cast<long>(i));
        continue;
      }
      u.msg.sent_at = global_now;
      node_->router->Emit(node_->index, node_->dst_node, global_now, u.msg);
      ++node_->retransmits;
      ++u.attempts;
      u.next_retx_at =
          global_now + cfg.retransmit_backoff.Delay(RetxKey(*node_, u.id),
                                                    u.attempts);
      ++emissions;
      ++i;
    }
  }
  if (!node_->volano->ChatComplete()) {
    const int owned_rooms = node_->volano->config().rooms;
    for (int r = 0; r < owned_rooms; ++r) {
      Message beacon;
      beacon.id = ++next_beacon_id_;
      beacon.sender = node_->index;
      beacon.room = node_->room_ids[static_cast<size_t>(r)];
      beacon.sent_at = global_now;
      beacon.payload = node_->volano->messages_delivered();
      node_->router->Emit(node_->index, node_->dst_node, global_now, beacon);
      ++node_->beacons_sent;
      ++emissions;
      if (armed && cfg.retransmit) {
        Unacked u;
        u.id = beacon.id;
        u.msg = beacon;
        u.next_retx_at =
            global_now + cfg.retransmit_backoff.Delay(RetxKey(*node_, u.id), 1);
        unacked_.push_back(u);
        while (unacked_.size() > cfg.retransmit_buffer) {
          // Bounded buffer: the oldest unacked beacon is given up on.
          unacked_.pop_front();
          ++node_->retx_abandoned;
        }
      }
    }
  }
  next_beacon_at_ = now + cfg.gossip_period;
  return Segment::RunAgain(cfg.beacon_cycles *
                           (emissions == 0 ? 1 : emissions));
}

Segment FederationRx::NextSegment(Machine& machine, Task& task) {
  (void)task;
  const ScaleConfig& cfg = *node_->config;
  SimSocket* inbox = node_->inbox.get();
  Message beacon;
  switch (inbox->TryReadMsg(machine, &beacon)) {
    case SockStatus::kOk:
      if (!node_->armed) {
        ++node_->beacons_received;
        node_->last_remote_progress = beacon.payload;
        return Segment::RunAgain(cfg.gossip_process_cycles);
      }
      return Process(machine, beacon);
    case SockStatus::kWouldBlock:
      if (node_->armed && cum_ > last_acked_) {
        // Inbox drained: return one cumulative ack covering everything
        // processed since the last ack (delayed-ack batching for free).
        Message ack;
        ack.id = cum_;
        ack.sender = node_->index;
        ack.room = kAckRoom;
        const Cycles global_now = node_->clock_offset + machine.Now();
        ack.sent_at = global_now;
        ack.payload = cum_;
        node_->router->Emit(node_->index, node_->src_node, global_now, ack);
        last_acked_ = cum_;
        ++node_->acks_sent;
        return Segment::RunAgain(cfg.beacon_cycles);
      }
      return Segment::Block(cfg.chat.syscall_cycles, &inbox->read_wait(),
                            [inbox] { return !inbox->ReadReady(); });
    default:  // kEof / kClosed / kReset: the federation shut down.
      return Segment::Exit(cfg.chat.syscall_cycles);
  }
}

void FederationRx::Deliver(const Message& beacon) {
  ++node_->beacons_received;
  node_->last_remote_progress = beacon.payload;
}

Segment FederationRx::Process(Machine& machine, const Message& beacon) {
  (void)machine;
  const ScaleConfig& cfg = *node_->config;
  if (beacon.room == kAckRoom) {
    // The successor's cumulative ack for our own transmissions.
    if (beacon.payload > node_->tx_acked) {
      node_->tx_acked = beacon.payload;
    }
    ++node_->acks_received;
    return Segment::RunAgain(cfg.chat.syscall_cycles);
  }
  const uint64_t id = beacon.id;
  if (id <= cum_ || reorder_.count(id) != 0) {
    ++node_->dup_discards;
    return Segment::RunAgain(cfg.chat.syscall_cycles);
  }
  uint64_t processed = 0;
  if (id == cum_ + 1) {
    Deliver(beacon);
    cum_ = id;
    ++processed;
  } else if (id > cum_ + cfg.recovery_gap_span ||
             reorder_.size() >= cfg.recovery_gap_span) {
    // Gap too wide (a restarted predecessor's incarnation jump is 2^48) or
    // the reorder buffer is full: jump past it. Buffered beacons below the
    // jump target still get processed in id order; the rest of the gap is
    // this run's deliveries_lost.
    for (auto it = reorder_.begin(); it != reorder_.end() && it->first < id;) {
      Deliver(it->second);
      ++processed;
      it = reorder_.erase(it);
    }
    Deliver(beacon);
    cum_ = id;
    ++processed;
  } else {
    reorder_.emplace(id, beacon);
    return Segment::RunAgain(cfg.chat.syscall_cycles);
  }
  // Drain whatever the new cum_ made contiguous.
  while (!reorder_.empty() && reorder_.begin()->first == cum_ + 1) {
    Deliver(reorder_.begin()->second);
    ++cum_;
    ++processed;
    reorder_.erase(reorder_.begin());
  }
  return Segment::RunAgain(cfg.gossip_process_cycles *
                           static_cast<Cycles>(processed));
}

// Per-node RunStats snapshot (the sharded analog of the facade's
// CollectStats), memory block included.
RunStats NodeRunStats(const ScaleNode& node) {
  RunStats stats;
  const Machine& machine = *node.machine;
  stats.sched = machine.scheduler().stats();
  stats.machine = machine.stats();
  stats.events = machine.engine().queue_stats();
  stats.memory.task_arena_bytes = machine.task_arena_bytes();
  stats.memory.task_arena_chunks = machine.task_arena_stats().chunks;
  stats.memory.peak_live_sockets =
      node.volano->SocketCount() + (node.inbox ? 1 : 0);
  stats.elapsed_sec = CyclesToSec(machine.Now());
  return stats;
}

// Schedules one fabric delivery onto `dst`'s engine. Shared by the live
// coordinator sink and checkpoint replay so both paths produce identical
// engine insertion order and identical delivery-event behavior. Never logs
// (the sink logs before calling; replayed arrivals are already logged).
void ScheduleArrivalOn(ScaleNode* dst, Cycles arrival, const Message& payload) {
  ++dst->pending_deliveries;
  // A restarted machine's clock is offset: schedule at local time.
  dst->machine->engine().ScheduleAt(
      arrival - dst->clock_offset, [dst, payload] {
        --dst->pending_deliveries;
        switch (dst->inbox->TryWriteMsg(*dst->machine, payload)) {
          case SockStatus::kOk:
            break;
          case SockStatus::kWouldBlock:
            // Bounded inbox full: the beacon is dropped like a datagram
            // against a full receive buffer.
            ++dst->inbox_overflows;
            break;
          default:  // kClosed / kReset: delivery raced the shutdown.
            ++dst->late_writes;
            break;
        }
      });
}

// Checkpoint verification line for a live node: every node-local value the
// next windows' behavior depends on. Computed at checkpoint time and again
// after restore replay — any divergence rejects the segment.
std::string VerifyLine(const ScaleNode& node) {
  std::string line = StrFormat(
      "fed:%llu,%llu,%llu,%llu,%llu,%llu,%llu,%llu,%llu,%llu|ack:%llu|pend:%llu|",
      static_cast<unsigned long long>(node.beacons_sent),
      static_cast<unsigned long long>(node.beacons_received),
      static_cast<unsigned long long>(node.inbox_overflows),
      static_cast<unsigned long long>(node.late_writes),
      static_cast<unsigned long long>(node.last_remote_progress),
      static_cast<unsigned long long>(node.retransmits),
      static_cast<unsigned long long>(node.retx_abandoned),
      static_cast<unsigned long long>(node.dup_discards),
      static_cast<unsigned long long>(node.acks_sent),
      static_cast<unsigned long long>(node.acks_received),
      static_cast<unsigned long long>(node.tx_acked),
      static_cast<unsigned long long>(node.pending_deliveries));
  line += RunStatsDigest(NodeRunStats(node));
  line += StrFormat("|chat:%llu,%llu",
                    static_cast<unsigned long long>(node.volano->messages_sent()),
                    static_cast<unsigned long long>(node.volano->messages_delivered()));
  if (node.tx != nullptr) {
    line += "|" + node.tx->EncodeState();
  }
  if (node.rx != nullptr) {
    line += "|" + node.rx->EncodeState();
  }
  return line;
}

// Builds (or rebuilds, incarnation > 0) a node's simulated machine, chat
// workload over node->room_ids, inbox, and federation relays, and starts it.
void BootNode(ScaleNode* node, const ScaleConfig& config) {
  const uint64_t seed_key =
      node->incarnation == 0
          ? kScaleSeedKey
          : kScaleRestartKey + static_cast<uint64_t>(node->incarnation);
  MachineConfig mc = MakeMachineConfig(
      config.kernel, config.scheduler,
      DeriveSeed(config.seed, seed_key, static_cast<uint64_t>(node->index)));
  node->machine = std::make_unique<Machine>(mc);

  VolanoConfig chat = config.chat;
  chat.rooms = static_cast<int>(node->room_ids.size());
  node->volano = std::make_unique<VolanoWorkload>(*node->machine, chat);
  node->volano->Setup();

  if (node->router != nullptr) {
    node->inbox = std::make_unique<SimSocket>(
        node->incarnation == 0
            ? StrFormat("node%d.fabric.in", node->index)
            : StrFormat("node%d.fabric.in#%d", node->index, node->incarnation),
        config.fabric_inbox_capacity);
    node->tx = std::make_unique<FederationTx>(node);
    node->rx = std::make_unique<FederationRx>(node);
    // The relays are server-process threads: share the server JVM's mm.
    TaskParams params;
    params.mm = node->volano->server_mm();
    params.name = StrFormat("node%d.fedtx", node->index);
    params.behavior = node->tx.get();
    node->machine->CreateTask(params);
    params.name = StrFormat("node%d.fedrx", node->index);
    params.behavior = node->rx.get();
    node->machine->CreateTask(params);
  }
  // Checkpoint bookkeeping: a fresh incarnation starts a fresh arrival log,
  // and the counter values right now are what replay will restart from.
  node->arrival_log.clear();
  node->boot_counters.beacons_sent = node->beacons_sent;
  node->boot_counters.beacons_received = node->beacons_received;
  node->boot_counters.inbox_overflows = node->inbox_overflows;
  node->boot_counters.late_writes = node->late_writes;
  node->boot_counters.last_remote_progress = node->last_remote_progress;
  node->boot_counters.retransmits = node->retransmits;
  node->boot_counters.retx_abandoned = node->retx_abandoned;
  node->boot_counters.dup_discards = node->dup_discards;
  node->boot_counters.acks_sent = node->acks_sent;
  node->boot_counters.acks_received = node->acks_received;
  node->machine->Start();
}

// Resolves the per-window wall-clock budget: explicit config value, else
// the supervisor's ELSC_CELL_TIMEOUT_MS, else off.
double ResolveWindowBudget(const ScaleConfig& config) {
  double budget = config.window_wall_budget_sec;
  if (budget == 0.0) {
    const char* env = std::getenv("ELSC_CELL_TIMEOUT_MS");
    budget = env != nullptr ? std::atof(env) / 1000.0 : 0.0;
  }
  return budget > 0.0 ? budget : 0.0;
}

}  // namespace

ScaleRun RunShardedVolano(const ScaleConfig& config, int shards) {
  const int num_nodes = config.nodes();
  ELSC_CHECK_MSG(config.rooms >= 1 && num_nodes >= 1, "scale scenario needs rooms");
  ELSC_CHECK_MSG(config.window > 0, "scale window must be positive");
  const Cycles window = config.window;
  const Cycles latency =
      config.fabric_latency == 0 ? window : config.fabric_latency;
  ELSC_CHECK_MSG(latency >= window,
                 "conservative rule: fabric latency must be >= the window");
  const bool gossip = config.gossip_period > 0;
  const bool armed = config.faults.Enabled();
  shards = std::clamp(shards <= 0 ? 1 : shards, 1, num_nodes);

  // Checkpoint knobs: explicit config wins, else the ELSC_SCALE_CKPT*
  // environment, else disabled. The fingerprint binds segments to this exact
  // scenario (and names them, so concurrent sweep cells never collide).
  ScaleCheckpointOptions ckpt = config.ckpt;
  if (ckpt.path.empty()) {
    ckpt = ScaleCheckpointOptions::FromEnv();
  }
  const uint64_t config_fp = ckpt.armed() ? ScaleConfigFingerprint(config) : 0;

  ScaleRun run;
  run.nodes = num_nodes;
  run.shards = shards;
  run.rooms = static_cast<uint64_t>(config.rooms);
  run.connections = config.connections();
  run.fault_model = armed;
  run.digest = kFnvOffset;

  FabricRouter router(num_nodes, window, latency);
  if (armed) {
    router.ArmFaults(&config.faults);
  }
  if (config.fabric_lane_capacity > 0) {
    router.SetLaneCapacity(config.fabric_lane_capacity);
  }

  // The router's post-construction state: ResetState() below reimports it
  // when a partially-applied restore is rejected mid-way.
  const FabricRouterState virgin_router = router.ExportState();

  // ---- Build the federation ----
  std::vector<std::unique_ptr<ScaleNode>> nodes(static_cast<size_t>(num_nodes));

  const auto make_node = [&](int i) {
    auto node = std::make_unique<ScaleNode>();
    node->index = i;
    node->first_room = i * config.rooms_per_node;
    node->dst_node = (i + 1) % num_nodes;
    node->src_node = (i + num_nodes - 1) % num_nodes;
    node->config = &config;
    node->router = gossip ? &router : nullptr;
    node->armed = armed;
    node->log_arrivals = ckpt.armed();
    return node;
  };

  const auto build_cold = [&] {
    for (int i = 0; i < num_nodes; ++i) {
      auto node = make_node(i);
      const int owned =
          std::min(config.rooms_per_node, config.rooms - node->first_room);
      node->room_ids.reserve(static_cast<size_t>(owned));
      for (int r = 0; r < owned; ++r) {
        node->room_ids.push_back(node->first_room + r);
      }
      BootNode(node.get(), config);
      nodes[static_cast<size_t>(i)] = std::move(node);
    }
  };

  // ---- Conservative time-windowed lock-step ----
  std::unique_ptr<ThreadPool> pool;
  if (shards > 1) {
    pool = std::make_unique<ThreadPool>(shards);
  }
  const double wall_budget = ResolveWindowBudget(config);

  int live = num_nodes;
  int chats_done = 0;
  bool all_completed = true;
  Cycles inbox_close_at = 0;  // 0 = fabric still open.
  bool inboxes_closed = !gossip;
  uint64_t window_index = 0;
  // Window indices the fabric closed / the inboxes EOF'd at (0 = not yet):
  // checkpoint replay must re-apply both at exactly the original barriers.
  uint64_t router_close_window = 0;
  uint64_t inbox_close_window = 0;
  bool stopped_early = false;  // ckpt.stop_after_window tripped.

  // ---- Delivery sink: schedules a beacon's arrival on its destination ----
  // Runs on the coordinator thread at barriers (no shard is advancing), so
  // ScheduleAt into the destination engine is race-free; the event itself
  // fires on whichever shard advances the destination through `arrival`.
  const auto sink = [&nodes, &window_index](
                        const FabricMessage& msg,
                        Cycles arrival) -> FabricRouter::Delivery {
    ScaleNode* dst = nodes[static_cast<size_t>(msg.dst_node)].get();
    if (dst == nullptr) {
      return FabricRouter::Delivery::kRefused;
    }
    if (dst->down || dst->machine == nullptr) {
      return FabricRouter::Delivery::kDown;
    }
    if (dst->log_arrivals) {
      dst->arrival_log.push_back(CkptArrival{window_index, arrival, msg.payload});
    }
    ScheduleArrivalOn(dst, arrival, msg.payload);
    return FabricRouter::Delivery::kDelivered;
  };

  // Folds every still-live node as failed (partial per-node stats included)
  // and stamps the run's failure — the deadline and watchdog exits.
  const auto fold_failed = [&](const char* tag, const std::string& why) {
    for (size_t n = 0; n < nodes.size(); ++n) {
      ScaleNode* node = nodes[n].get();
      if (node == nullptr) {
        continue;
      }
      RunStats node_stats;
      if (node->machine != nullptr) {
        node_stats = NodeRunStats(*node);
        run.messages_sent += node->volano->messages_sent();
        run.messages_delivered += node->volano->messages_delivered();
      }
      if (node->has_carried_stats) {
        MergeRunStats(&node->carried_stats, node_stats);
        node_stats = node->carried_stats;
      }
      node_stats.failed = true;
      run.messages_sent += node->banked_sent;
      run.messages_delivered += node->banked_delivered;
      run.beacons_sent += node->beacons_sent;
      run.beacons_received += node->beacons_received;
      run.inbox_overflows += node->inbox_overflows;
      run.late_writes += node->late_writes;
      run.retransmits += node->retransmits;
      run.retx_abandoned += node->retx_abandoned;
      run.dup_discards += node->dup_discards;
      run.acks_sent += node->acks_sent;
      run.acks_received += node->acks_received;
      run.chat_messages_lost += node->chat_messages_lost;
      run.crash_inflight_dropped += node->crash_inflight_dropped;
      MergeRunStats(&run.stats, node_stats);
      run.digest = FnvFold(
          run.digest,
          StrFormat("n%d@%s|", node->index, tag) + RunStatsDigest(node_stats) +
              StrFormat("|fed:%llu,%llu,%llu,%llu;",
                        static_cast<unsigned long long>(node->beacons_sent),
                        static_cast<unsigned long long>(node->beacons_received),
                        static_cast<unsigned long long>(node->inbox_overflows),
                        static_cast<unsigned long long>(node->late_writes)));
      nodes[n].reset();
      --live;
    }
    all_completed = false;
    run.stats.failed = true;
    if (run.stats.failure.empty()) {
      run.stats.failure = why;
    }
  };

  // ---- Checkpoint machinery (scale_ckpt.h) ------------------------------

  // Serializes the coordinator-visible federation state at the current
  // (post-Exchange, post-fold) barrier.
  const auto snapshot = [&] {
    ScaleCheckpoint c;
    c.config_fp = config_fp;
    c.seed = config.seed;
    c.window_index = window_index;
    c.num_nodes = num_nodes;
    c.chats_done = chats_done;
    c.all_completed = all_completed;
    c.inboxes_closed = inboxes_closed;
    c.inbox_close_at = inbox_close_at;
    c.router_close_window = router_close_window;
    c.inbox_close_window = inbox_close_window;
    c.digest = run.digest;
    c.messages_sent = run.messages_sent;
    c.messages_delivered = run.messages_delivered;
    c.beacons_sent = run.beacons_sent;
    c.beacons_received = run.beacons_received;
    c.inbox_overflows = run.inbox_overflows;
    c.late_writes = run.late_writes;
    c.node_crashes = run.node_crashes;
    c.node_restarts = run.node_restarts;
    c.windows_degraded = run.windows_degraded;
    c.retransmits = run.retransmits;
    c.retx_abandoned = run.retx_abandoned;
    c.dup_discards = run.dup_discards;
    c.acks_sent = run.acks_sent;
    c.acks_received = run.acks_received;
    c.chat_messages_lost = run.chat_messages_lost;
    c.crash_inflight_dropped = run.crash_inflight_dropped;
    c.peak_live_tasks = run.peak_live_tasks;
    c.peak_live_nodes = run.peak_live_nodes;
    c.peak_task_arena_bytes = run.peak_task_arena_bytes;
    c.peak_live_sockets = run.peak_live_sockets;
    c.agg_stats = EncodeRunStats(run.stats);
    c.fabric = router.ExportState();
    for (const auto& owner : nodes) {
      const ScaleNode* node = owner.get();
      if (node == nullptr) {
        continue;  // Folded: its contribution lives in digest/stats above.
      }
      CkptNode cn;
      cn.index = node->index;
      cn.state = node->down ? 2 : 1;
      cn.incarnation = node->incarnation;
      cn.clock_offset = node->clock_offset;
      cn.crashes = node->crashes;
      cn.restart_window = node->restart_window;
      cn.chat_done = node->chat_done;
      cn.banked_sent = node->banked_sent;
      cn.banked_delivered = node->banked_delivered;
      cn.chat_messages_lost = node->chat_messages_lost;
      cn.crash_inflight_dropped = node->crash_inflight_dropped;
      if (node->down) {
        // Nothing to replay: current values restore directly.
        cn.beacons_sent = node->beacons_sent;
        cn.beacons_received = node->beacons_received;
        cn.inbox_overflows = node->inbox_overflows;
        cn.late_writes = node->late_writes;
        cn.last_remote_progress = node->last_remote_progress;
        cn.retransmits = node->retransmits;
        cn.retx_abandoned = node->retx_abandoned;
        cn.dup_discards = node->dup_discards;
        cn.acks_sent = node->acks_sent;
        cn.acks_received = node->acks_received;
      } else {
        // Live: the boot snapshot; replay re-adds this incarnation's deltas.
        const ScaleNode::FedSnapshot& b = node->boot_counters;
        cn.beacons_sent = b.beacons_sent;
        cn.beacons_received = b.beacons_received;
        cn.inbox_overflows = b.inbox_overflows;
        cn.late_writes = b.late_writes;
        cn.last_remote_progress = b.last_remote_progress;
        cn.retransmits = b.retransmits;
        cn.retx_abandoned = b.retx_abandoned;
        cn.dup_discards = b.dup_discards;
        cn.acks_sent = b.acks_sent;
        cn.acks_received = b.acks_received;
        cn.arrivals = node->arrival_log;
        cn.verify = VerifyLine(*node);
      }
      cn.room_ids = node->room_ids;
      if (node->has_carried_stats) {
        cn.carried_stats = EncodeRunStats(node->carried_stats);
      }
      c.nodes.push_back(std::move(cn));
    }
    return c;
  };

  const auto write_checkpoint = [&] {
    std::string error;
    if (!WriteCheckpointSegment(ckpt, snapshot(), &error)) {
      std::fprintf(stderr,
                   "elsc-scale: checkpoint write failed (continuing "
                   "uncheckpointed): %s\n",
                   error.c_str());
    }
  };

  // Reconstructs a live node by deterministic replay of its current
  // incarnation: boot exactly as the original did (same derived seed), step
  // window by window re-scheduling the logged arrivals at their original
  // barriers, and re-apply the router-close / inbox-EOF transitions at the
  // windows the coordinator originally performed them. The node's own
  // re-emissions go into a throwaway per-node router — per node because the
  // closed flag must flip at this node's original window (it gates the
  // transmit relay's exit condition) — and are discarded: the originals
  // already reached their destinations, which logged or folded them.
  const auto replay_live_node = [&](ScaleNode* node, const CkptNode& cn) {
    const uint64_t boot_window = node->incarnation == 0 ? 0 : cn.restart_window;
    FabricRouter replay_router(num_nodes, window, latency);
    if (gossip) {
      node->router = &replay_router;
    }
    const FabricRouter::Sink discard = [](const FabricMessage&, Cycles) {
      return FabricRouter::Delivery::kRefused;
    };
    size_t cursor = 0;
    for (uint64_t w = boot_window; w <= window_index; ++w) {
      const Cycles replay_barrier = static_cast<Cycles>(w) * window;
      if (w > boot_window) {
        // The original run advanced the node through window w before the
        // barrier-w exchange. At the boot window itself the machine had not
        // run yet: arrivals landed on the untouched fresh engine, and
        // stepping it here would fire t=0 start events too early, changing
        // event insertion order.
        node->machine->engine().RunUntil(replay_barrier - node->clock_offset);
        if (gossip) {
          replay_router.Exchange(replay_barrier, discard);
        }
      }
      while (cursor < cn.arrivals.size() && cn.arrivals[cursor].window == w) {
        ScheduleArrivalOn(node, cn.arrivals[cursor].arrival,
                          cn.arrivals[cursor].payload);
        ++cursor;
      }
      if (gossip && router_close_window != 0 && w == router_close_window) {
        replay_router.Close();
      }
      if (gossip && inbox_close_window != 0 && w == inbox_close_window) {
        node->inbox->Close(*node->machine);
      }
    }
    if (gossip) {
      node->router = &router;
    }
    if (cursor != cn.arrivals.size()) {
      return false;  // An arrival tagged past the checkpoint window: corrupt.
    }
    return VerifyLine(*node) == cn.verify;
  };

  // Installs one decoded checkpoint. False leaves partially-applied state —
  // the caller must reset_state() before continuing.
  const auto restore_from = [&](const ScaleCheckpoint& c) {
    run.digest = c.digest;
    run.messages_sent = c.messages_sent;
    run.messages_delivered = c.messages_delivered;
    run.beacons_sent = c.beacons_sent;
    run.beacons_received = c.beacons_received;
    run.inbox_overflows = c.inbox_overflows;
    run.late_writes = c.late_writes;
    run.node_crashes = c.node_crashes;
    run.node_restarts = c.node_restarts;
    run.windows_degraded = c.windows_degraded;
    run.retransmits = c.retransmits;
    run.retx_abandoned = c.retx_abandoned;
    run.dup_discards = c.dup_discards;
    run.acks_sent = c.acks_sent;
    run.acks_received = c.acks_received;
    run.chat_messages_lost = c.chat_messages_lost;
    run.crash_inflight_dropped = c.crash_inflight_dropped;
    run.peak_live_tasks = c.peak_live_tasks;
    run.peak_live_nodes = c.peak_live_nodes;
    run.peak_task_arena_bytes = c.peak_task_arena_bytes;
    run.peak_live_sockets = c.peak_live_sockets;
    if (!DecodeRunStats(c.agg_stats, &run.stats)) {
      return false;
    }
    chats_done = c.chats_done;
    all_completed = c.all_completed;
    inboxes_closed = c.inboxes_closed;
    inbox_close_at = c.inbox_close_at;
    router_close_window = c.router_close_window;
    inbox_close_window = c.inbox_close_window;
    window_index = c.window_index;
    router.ImportState(c.fabric);
    live = 0;
    for (const CkptNode& cn : c.nodes) {
      auto node = make_node(cn.index);
      node->incarnation = cn.incarnation;
      node->clock_offset = cn.clock_offset;
      node->crashes = cn.crashes;
      node->restart_window = cn.restart_window;
      node->chat_done = cn.chat_done;
      node->banked_sent = cn.banked_sent;
      node->banked_delivered = cn.banked_delivered;
      node->chat_messages_lost = cn.chat_messages_lost;
      node->crash_inflight_dropped = cn.crash_inflight_dropped;
      node->beacons_sent = cn.beacons_sent;
      node->beacons_received = cn.beacons_received;
      node->inbox_overflows = cn.inbox_overflows;
      node->late_writes = cn.late_writes;
      node->last_remote_progress = cn.last_remote_progress;
      node->retransmits = cn.retransmits;
      node->retx_abandoned = cn.retx_abandoned;
      node->dup_discards = cn.dup_discards;
      node->acks_sent = cn.acks_sent;
      node->acks_received = cn.acks_received;
      node->room_ids = cn.room_ids;
      if (!cn.carried_stats.empty()) {
        if (!DecodeRunStats(cn.carried_stats, &node->carried_stats)) {
          return false;
        }
        node->has_carried_stats = true;
      }
      // Cheap structural sanity before committing to a replay: a live
      // node's boot barrier must match its clock offset and lie at or
      // before the checkpoint window; a down node's restart must still be
      // in the future.
      const Cycles expect_offset =
          cn.incarnation == 0 ? 0
                              : static_cast<Cycles>(cn.restart_window) * window;
      if (node->clock_offset != expect_offset || cn.room_ids.empty()) {
        return false;
      }
      if (cn.state == 2) {
        if (cn.restart_window <= c.window_index) {
          return false;
        }
        node->down = true;
      } else {
        if (cn.incarnation > 0 && cn.restart_window > c.window_index) {
          return false;
        }
        BootNode(node.get(), config);
        if (!replay_live_node(node.get(), cn)) {
          return false;
        }
        node->arrival_log = cn.arrivals;  // The next segment still needs it.
      }
      nodes[static_cast<size_t>(cn.index)] = std::move(node);
      ++live;
    }
    return live > 0;
  };

  // Returns the function-local state to cold-start values after a rejected
  // restore attempt (nodes, aggregate run, loop state, router).
  const auto reset_state = [&] {
    for (auto& node : nodes) {
      node.reset();
    }
    ScaleRun fresh;
    fresh.nodes = num_nodes;
    fresh.shards = shards;
    fresh.rooms = static_cast<uint64_t>(config.rooms);
    fresh.connections = config.connections();
    fresh.fault_model = armed;
    fresh.digest = kFnvOffset;
    run = fresh;
    router.ImportState(virgin_router);
    live = num_nodes;
    chats_done = 0;
    all_completed = true;
    inbox_close_at = 0;
    inboxes_closed = !gossip;
    window_index = 0;
    router_close_window = 0;
    inbox_close_window = 0;
  };

  // Resumes from the newest valid segment. Every rejection — unreadable,
  // torn, checksum-failed, wrong scenario, or post-replay verification
  // mismatch — is logged with a one-line repro and the next-older segment
  // is tried; false means cold start.
  const auto try_restore = [&] {
    if (!ckpt.armed()) {
      return false;
    }
    for (const CheckpointSegmentInfo& seg :
         ListCheckpointSegments(ckpt.path, config_fp)) {
      std::string contents;
      std::string why;
      ScaleCheckpoint c;
      if (!ReadFileToString(seg.path, &contents)) {
        why = "unreadable";
      } else if (!DecodeScaleCheckpoint(contents, &c, &why)) {
        // `why` was set by the decoder.
      } else if (c.config_fp != config_fp || c.seed != config.seed ||
                 c.num_nodes != num_nodes) {
        why = "scenario binding mismatch (fingerprint/seed/nodes)";
      } else if (!restore_from(c)) {
        why = "restore verification failed";
        reset_state();
      } else {
        std::fprintf(
            stderr,
            "elsc-scale: resumed from %s (window %llu, %d node(s) live)\n",
            seg.path.c_str(), static_cast<unsigned long long>(c.window_index),
            live);
        return true;
      }
      std::fprintf(stderr,
                   "elsc-scale: rejected checkpoint %s: %s — repro: rerun "
                   "with ELSC_SCALE_CKPT=%s and this file preserved\n",
                   seg.path.c_str(), why.c_str(), ckpt.path.c_str());
    }
    return false;
  };

  if (!try_restore()) {
    build_cold();
  }

  while (live > 0) {
    ++window_index;
    const Cycles barrier = static_cast<Cycles>(window_index) * window;

    // Advance every live node to the barrier. Node->shard assignment is
    // round-robin by node index; any assignment yields identical results
    // (nodes only interact through the fabric, drained below). Each shard
    // thread (and the serial loop) arms a per-window wall-clock watchdog:
    // a livelocked node fails the federation instead of hanging it.
    bool wall_timeout = false;
    try {
      if (pool != nullptr) {
        for (int s = 0; s < shards; ++s) {
          pool->Submit([&nodes, s, shards, barrier, wall_budget] {
            std::optional<CellWatchdog> dog;
            if (wall_budget > 0.0) {
              dog.emplace(wall_budget);
            }
            for (size_t n = static_cast<size_t>(s); n < nodes.size();
                 n += static_cast<size_t>(shards)) {
              ScaleNode* node = nodes[n].get();
              if (node != nullptr && !node->down) {
                node->machine->engine().RunUntil(barrier - node->clock_offset);
              }
            }
          });
        }
        pool->Wait();  // Rethrows the first shard exception, if any.
      } else {
        std::optional<CellWatchdog> dog;
        if (wall_budget > 0.0) {
          dog.emplace(wall_budget);
        }
        for (auto& node : nodes) {
          if (node != nullptr && !node->down) {
            node->machine->engine().RunUntil(barrier - node->clock_offset);
          }
        }
      }
    } catch (const CellDeadlineExceeded&) {
      if (wall_budget <= 0.0) {
        throw;  // The supervisor's cell watchdog, not ours.
      }
      wall_timeout = true;
    }
    if (wall_timeout) {
      fold_failed("watchdog",
                  StrFormat("federation watchdog: window %llu exceeded %.3fs "
                            "wall-clock",
                            static_cast<unsigned long long>(window_index),
                            wall_budget));
      break;
    }

    // ---- Barrier (coordinator, single-threaded) ----
    // Failure plan, step 1 — crashes scheduled for this window. The node's
    // engine is torn down mid-scenario: queued inbox traffic is discarded
    // (peers see a reset inbox), scheduled arrivals die with the engine,
    // finished rooms' delivery quotas are banked, partial rooms are lost
    // and will re-run at restart.
    if (armed) {
      for (auto& owner : nodes) {
        ScaleNode* node = owner.get();
        if (node == nullptr || node->down || node->machine == nullptr ||
            node->crashes > 0 || node->volano->ChatComplete() ||
            !config.faults.NodeCrashes(node->index) ||
            config.faults.CrashWindow(node->index) != window_index) {
          continue;
        }
        node->inbox->ResetByPeer(*node->machine);
        node->crash_inflight_dropped +=
            node->pending_deliveries + node->inbox->stats().discarded;
        node->pending_deliveries = 0;
        MergeRunStats(&node->carried_stats, NodeRunStats(*node));
        node->has_carried_stats = true;
        const VolanoConfig& chat = node->volano->config();
        const uint64_t room_quota_delivered =
            static_cast<uint64_t>(chat.users_per_room) * chat.users_per_room *
            chat.messages_per_user;
        const uint64_t room_quota_sent =
            static_cast<uint64_t>(chat.users_per_room) * chat.messages_per_user;
        std::vector<int> unfinished;
        for (int r = 0; r < chat.rooms; ++r) {
          if (node->volano->RoomComplete(r)) {
            node->banked_delivered += room_quota_delivered;
            node->banked_sent += room_quota_sent;
          } else {
            node->chat_messages_lost += node->volano->RoomDelivered(r);
            unfinished.push_back(node->room_ids[static_cast<size_t>(r)]);
          }
        }
        node->room_ids = std::move(unfinished);
        node->arrival_log.clear();  // Dead incarnation: never replayed.
        // Teardown in the member-destruction order a folded node uses.
        node->rx.reset();
        node->tx.reset();
        node->inbox.reset();
        node->volano.reset();
        node->machine.reset();
        node->down = true;
        node->restart_window =
            window_index + config.faults.DownWindows(node->index);
        ++node->crashes;
        ++run.node_crashes;
      }
      // Step 2 — restarts due this window: rebuild the node with a derived
      // seed over its unfinished rooms; its fresh engine starts at local
      // t = 0, offset to the current barrier.
      for (auto& owner : nodes) {
        ScaleNode* node = owner.get();
        if (node == nullptr || !node->down ||
            node->restart_window != window_index) {
          continue;
        }
        ++node->incarnation;
        node->clock_offset = barrier;
        node->tx_acked = 0;  // The new incarnation's ids restart the link.
        BootNode(node, config);
        node->down = false;
        ++run.node_restarts;
      }
      for (const auto& node : nodes) {
        if (node != nullptr && node->down) {
          ++run.windows_degraded;
          break;
        }
      }
    }

    // Memory high-water sampling across the live federation.
    uint64_t live_tasks = 0;
    uint64_t arena_bytes = 0;
    uint64_t sockets = 0;
    for (const auto& node : nodes) {
      if (node == nullptr || node->machine == nullptr) {
        continue;
      }
      live_tasks += node->machine->live_tasks();
      arena_bytes += node->machine->task_arena_bytes();
      sockets += node->volano->SocketCount() + (node->inbox ? 1 : 0);
    }
    run.peak_live_tasks = std::max(run.peak_live_tasks, live_tasks);
    run.peak_task_arena_bytes = std::max(run.peak_task_arena_bytes, arena_bytes);
    run.peak_live_sockets = std::max(run.peak_live_sockets, sockets);
    run.peak_live_nodes =
        std::max(run.peak_live_nodes, static_cast<uint64_t>(live));

    // Cross-node traffic exchange (deterministic node/emission order).
    if (gossip) {
      router.Exchange(barrier, sink);
    }

    // Chat-completion scan; once the whole federation's chat is done the
    // fabric closes, and after one more latency the inboxes EOF so the
    // receive relays drain whatever is still in flight and exit.
    for (const auto& node : nodes) {
      if (node != nullptr && node->machine != nullptr && !node->chat_done &&
          node->volano->ChatComplete()) {
        node->chat_done = true;
        ++chats_done;
      }
    }
    if (gossip && !router.closed() && chats_done == num_nodes) {
      router.Close();
      inbox_close_at = barrier + latency;
      router_close_window = window_index;
    }
    if (!inboxes_closed && inbox_close_at != 0 && barrier >= inbox_close_at) {
      for (const auto& node : nodes) {
        if (node != nullptr && node->machine != nullptr) {
          node->inbox->Close(*node->machine);
        }
      }
      inboxes_closed = true;
      inbox_close_window = window_index;
    }

    // Streaming fold: finished nodes are folded into the aggregate in node
    // order and destroyed — constant live state, not O(total nodes).
    for (size_t n = 0; n < nodes.size(); ++n) {
      ScaleNode* node = nodes[n].get();
      if (node == nullptr || node->machine == nullptr ||
          !node->volano->Done()) {
        continue;
      }
      node->completed_window = window_index;
      RunStats node_stats = NodeRunStats(*node);
      if (node->has_carried_stats) {
        // Dead incarnations' partial stats ride along with the final one.
        MergeRunStats(&node->carried_stats, node_stats);
        node_stats = node->carried_stats;
      }
      const VolanoResult result = node->volano->Result();
      all_completed = all_completed && result.completed && !node_stats.failed;
      run.messages_sent += result.messages_sent + node->banked_sent;
      run.messages_delivered += result.messages_delivered + node->banked_delivered;
      run.beacons_sent += node->beacons_sent;
      run.beacons_received += node->beacons_received;
      run.inbox_overflows += node->inbox_overflows;
      run.late_writes += node->late_writes;
      run.retransmits += node->retransmits;
      run.retx_abandoned += node->retx_abandoned;
      run.dup_discards += node->dup_discards;
      run.acks_sent += node->acks_sent;
      run.acks_received += node->acks_received;
      run.chat_messages_lost += node->chat_messages_lost;
      run.crash_inflight_dropped += node->crash_inflight_dropped;
      MergeRunStats(&run.stats, node_stats);
      std::string record =
          StrFormat("n%d@%llu|", node->index,
                    static_cast<unsigned long long>(node->completed_window)) +
          RunStatsDigest(node_stats) +
          StrFormat("|chat:%llu,%llu,%d|fed:%llu,%llu,%llu,%llu;",
                    static_cast<unsigned long long>(result.messages_sent),
                    static_cast<unsigned long long>(result.messages_delivered),
                    result.completed ? 1 : 0,
                    static_cast<unsigned long long>(node->beacons_sent),
                    static_cast<unsigned long long>(node->beacons_received),
                    static_cast<unsigned long long>(node->inbox_overflows),
                    static_cast<unsigned long long>(node->late_writes));
      if (run.fault_model) {
        // The recovery block only exists under an armed plan — fault-free
        // fold records stay byte-identical to the pre-failure-model layout.
        record += StrFormat(
            "|rec:%d,%llu,%llu,%llu,%llu,%llu,%llu,%llu,%llu;",
            node->incarnation,
            static_cast<unsigned long long>(node->banked_delivered),
            static_cast<unsigned long long>(node->retransmits),
            static_cast<unsigned long long>(node->retx_abandoned),
            static_cast<unsigned long long>(node->dup_discards),
            static_cast<unsigned long long>(node->acks_sent),
            static_cast<unsigned long long>(node->acks_received),
            static_cast<unsigned long long>(node->chat_messages_lost),
            static_cast<unsigned long long>(node->crash_inflight_dropped));
      }
      run.digest = FnvFold(run.digest, record);
      nodes[n].reset();
      --live;
    }

    // Simulated-time safety net: fold whatever is still live as failed,
    // partial per-node stats and all.
    if (live > 0 && barrier >= config.deadline) {
      fold_failed("deadline",
                  StrFormat("scale deadline exceeded: %d node(s) still live "
                            "at window %llu",
                            num_nodes - chats_done,
                            static_cast<unsigned long long>(window_index)));
      break;
    }

    // ---- Checkpoint / kill / shutdown points (end of barrier) ----
    if (live > 0) {
      if (ckpt.armed()) {
        const bool due = ckpt.every > 0 && window_index % ckpt.every == 0;
        // Forced segments: the stop-after test hook, a pending graceful
        // shutdown (flush state before unwinding), and the kill injector
        // (the drill resumes from this very segment).
        const bool forced =
            (ckpt.stop_after_window != 0 &&
             window_index == ckpt.stop_after_window) ||
            ShutdownRequested() ||
            ScaleKillWindow() == static_cast<int64_t>(window_index);
        if (due || forced) {
          write_checkpoint();
        }
      }
      MaybeKillAtScaleWindow(window_index);
      if (ShutdownRequested()) {
        throw GracefulShutdownRequested{};
      }
      if (ckpt.armed() && ckpt.stop_after_window != 0 &&
          window_index == ckpt.stop_after_window) {
        stopped_early = true;
        break;
      }
    }
  }

  run.windows = window_index;
  // stopped_early leaves nodes live: a deliberately-partial run (the test
  // stand-in for a mid-scenario kill) is never "completed".
  run.completed = all_completed && live == 0;
  run.fabric = router.stats();
  run.deliveries_lost = run.beacons_sent > run.beacons_received
                            ? run.beacons_sent - run.beacons_received
                            : 0;
  run.elapsed_sec = run.stats.elapsed_sec;
  run.throughput = run.elapsed_sec > 0
                       ? static_cast<double>(run.messages_delivered) / run.elapsed_sec
                       : 0.0;
  // Goodput under faults: deliveries per simulated second of *federation*
  // runtime — downtime, degraded windows, and re-run rooms all stretch the
  // denominator, unlike throughput's max-node-elapsed.
  const double federation_sec = CyclesToSec(static_cast<Cycles>(run.windows) * window);
  run.goodput = federation_sec > 0
                    ? static_cast<double>(run.messages_delivered) / federation_sec
                    : 0.0;
  run.digest = FnvFold(
      run.digest,
      StrFormat("windows:%llu|fabric:%llu,%llu,%llu,%llu|peaks:%llu,%llu,%llu,%llu",
                static_cast<unsigned long long>(run.windows),
                static_cast<unsigned long long>(run.fabric.emitted),
                static_cast<unsigned long long>(run.fabric.routed),
                static_cast<unsigned long long>(run.fabric.refused),
                static_cast<unsigned long long>(run.fabric.dropped_closed),
                static_cast<unsigned long long>(run.peak_live_tasks),
                static_cast<unsigned long long>(run.peak_live_nodes),
                static_cast<unsigned long long>(run.peak_task_arena_bytes),
                static_cast<unsigned long long>(run.peak_live_sockets)));
  if (run.fault_model) {
    run.digest = FnvFold(
        run.digest,
        StrFormat("|chaos:%llu,%llu,%llu,%llu,%llu,%llu,%llu|drops:%llu,%llu,%llu,%llu,%llu",
                  static_cast<unsigned long long>(run.node_crashes),
                  static_cast<unsigned long long>(run.node_restarts),
                  static_cast<unsigned long long>(run.windows_degraded),
                  static_cast<unsigned long long>(run.deliveries_lost),
                  static_cast<unsigned long long>(run.retransmits),
                  static_cast<unsigned long long>(run.retx_abandoned),
                  static_cast<unsigned long long>(run.dup_discards),
                  static_cast<unsigned long long>(run.fabric.dropped_loss),
                  static_cast<unsigned long long>(run.fabric.dropped_partition),
                  static_cast<unsigned long long>(run.fabric.dropped_crashed),
                  static_cast<unsigned long long>(run.fabric.dropped_lane_overflow),
                  static_cast<unsigned long long>(run.fabric.duplicated)));
  }
  if (ckpt.armed() && live == 0 && !run.stats.failed) {
    // Clean completion: stale segments must never resurrect a finished
    // scenario (a same-fingerprint rerun starts cold). Failed runs keep
    // theirs for post-mortem.
    RemoveCheckpointSegments(ckpt.path, config_fp);
  }
  return run;
}

std::string ScaleRunSignature(const ScaleRun& run) {
  std::string sig = StrFormat(
      "scale:%016llx|nodes:%d|windows:%llu|sent:%llu|delivered:%llu|"
      "beacons:%llu/%llu|drops:%llu+%llu|peak_tasks:%llu|peak_arena:%llu|"
      "elapsed:%a|completed:%d",
      static_cast<unsigned long long>(run.digest), run.nodes,
      static_cast<unsigned long long>(run.windows),
      static_cast<unsigned long long>(run.messages_sent),
      static_cast<unsigned long long>(run.messages_delivered),
      static_cast<unsigned long long>(run.beacons_sent),
      static_cast<unsigned long long>(run.beacons_received),
      static_cast<unsigned long long>(run.inbox_overflows),
      static_cast<unsigned long long>(run.late_writes),
      static_cast<unsigned long long>(run.peak_live_tasks),
      static_cast<unsigned long long>(run.peak_task_arena_bytes),
      run.elapsed_sec, run.completed ? 1 : 0);
  if (run.fault_model) {
    sig += StrFormat(
        "|crashes:%llu|restarts:%llu|degraded:%llu|lost:%llu|retx:%llu+%llu|"
        "dupdrop:%llu|acks:%llu/%llu|goodput:%a",
        static_cast<unsigned long long>(run.node_crashes),
        static_cast<unsigned long long>(run.node_restarts),
        static_cast<unsigned long long>(run.windows_degraded),
        static_cast<unsigned long long>(run.deliveries_lost),
        static_cast<unsigned long long>(run.retransmits),
        static_cast<unsigned long long>(run.retx_abandoned),
        static_cast<unsigned long long>(run.dup_discards),
        static_cast<unsigned long long>(run.acks_sent),
        static_cast<unsigned long long>(run.acks_received), run.goodput);
  }
  if (!run.stats.failure.empty()) {
    sig += "|failure:" + run.stats.failure;
  }
  return sig;
}

std::string RenderScaleJson(const std::vector<ScaleCell>& cells, uint64_t seed,
                            bool include_timing) {
  std::string out;
  out += StrFormat("{\n  \"seed\": %llu,\n  \"cells\": [\n",
                   static_cast<unsigned long long>(seed));
  for (size_t i = 0; i < cells.size(); ++i) {
    const ScaleCell& cell = cells[i];
    const ScaleRun& r = cell.run;
    // The failure-model block renders only for armed plans: fault-free
    // cells keep the exact pre-failure-model byte layout.
    std::string fault_block;
    if (r.fault_model) {
      fault_block = StrFormat(
          "     \"failure_model\": {\"node_crashes\": %llu, "
          "\"node_restarts\": %llu, \"windows_degraded\": %llu, "
          "\"deliveries_lost\": %llu, \"retransmits\": %llu, "
          "\"retx_abandoned\": %llu, \"dup_discards\": %llu, "
          "\"acks_sent\": %llu, \"acks_received\": %llu, "
          "\"crash_inflight_dropped\": %llu, \"chat_messages_lost\": %llu, "
          "\"goodput\": %.4f,\n"
          "      \"fabric_drops\": {\"loss\": %llu, \"partition\": %llu, "
          "\"crashed\": %llu, \"lane_overflow\": %llu, "
          "\"duplicated\": %llu}},\n",
          static_cast<unsigned long long>(r.node_crashes),
          static_cast<unsigned long long>(r.node_restarts),
          static_cast<unsigned long long>(r.windows_degraded),
          static_cast<unsigned long long>(r.deliveries_lost),
          static_cast<unsigned long long>(r.retransmits),
          static_cast<unsigned long long>(r.retx_abandoned),
          static_cast<unsigned long long>(r.dup_discards),
          static_cast<unsigned long long>(r.acks_sent),
          static_cast<unsigned long long>(r.acks_received),
          static_cast<unsigned long long>(r.crash_inflight_dropped),
          static_cast<unsigned long long>(r.chat_messages_lost), r.goodput,
          static_cast<unsigned long long>(r.fabric.dropped_loss),
          static_cast<unsigned long long>(r.fabric.dropped_partition),
          static_cast<unsigned long long>(r.fabric.dropped_crashed),
          static_cast<unsigned long long>(r.fabric.dropped_lane_overflow),
          static_cast<unsigned long long>(r.fabric.duplicated));
    }
    out += StrFormat(
        "    {\"kernel\": \"%s\", \"scheduler\": \"%s\", \"rooms\": %llu, "
        "\"connections\": %llu,\n"
        "     \"nodes\": %d, \"windows\": %llu,\n"
        "     \"messages_sent\": %llu, \"messages_delivered\": %llu, "
        "\"throughput\": %.4f, \"elapsed_sim_sec\": %.6f,\n"
        "     \"tasks_simulated\": %llu, \"events_simulated\": %llu,\n"
        "     \"federation\": {\"beacons_sent\": %llu, \"beacons_received\": %llu, "
        "\"inbox_overflows\": %llu, \"late_writes\": %llu, "
        "\"fabric_routed\": %llu, \"fabric_dropped_closed\": %llu},\n"
        "%s"
        "     \"memory\": {\"peak_live_tasks\": %llu, \"peak_live_nodes\": %llu, "
        "\"peak_task_arena_bytes\": %llu, \"peak_live_sockets\": %llu, "
        "\"total_task_arena_bytes\": %llu, \"total_arena_chunks\": %llu},\n"
        "     \"digest\": \"%016llx\", \"completed\": %s}%s\n",
        KernelConfigLabel(cell.config.kernel),
        SchedulerKindName(cell.config.scheduler),
        static_cast<unsigned long long>(r.rooms),
        static_cast<unsigned long long>(r.connections), r.nodes,
        static_cast<unsigned long long>(r.windows),
        static_cast<unsigned long long>(r.messages_sent),
        static_cast<unsigned long long>(r.messages_delivered), r.throughput,
        r.elapsed_sec,
        static_cast<unsigned long long>(r.stats.machine.tasks_created),
        static_cast<unsigned long long>(r.stats.events.fired),
        static_cast<unsigned long long>(r.beacons_sent),
        static_cast<unsigned long long>(r.beacons_received),
        static_cast<unsigned long long>(r.inbox_overflows),
        static_cast<unsigned long long>(r.late_writes),
        static_cast<unsigned long long>(r.fabric.routed),
        static_cast<unsigned long long>(r.fabric.dropped_closed),
        fault_block.c_str(),
        static_cast<unsigned long long>(r.peak_live_tasks),
        static_cast<unsigned long long>(r.peak_live_nodes),
        static_cast<unsigned long long>(r.peak_task_arena_bytes),
        static_cast<unsigned long long>(r.peak_live_sockets),
        static_cast<unsigned long long>(r.stats.memory.task_arena_bytes),
        static_cast<unsigned long long>(r.stats.memory.task_arena_chunks),
        static_cast<unsigned long long>(r.digest),
        r.completed ? "true" : "false", i + 1 < cells.size() ? "," : "");
  }
  out += "  ]";
  if (include_timing) {
    // Host measurements — everything above this block is simulated data and
    // byte-identical across shard/job counts; the CI determinism gate
    // renders with include_timing == false.
    struct rusage usage = {};
    getrusage(RUSAGE_SELF, &usage);
    out += StrFormat(
        ",\n  \"timing\": {\n    \"host_cpus\": %u, \"peak_rss_kb\": %llu,\n"
        "    \"cells\": [\n",
        std::thread::hardware_concurrency(),
        static_cast<unsigned long long>(usage.ru_maxrss));
    for (size_t i = 0; i < cells.size(); ++i) {
      const ScaleCell& cell = cells[i];
      out += StrFormat(
          "      {\"scheduler\": \"%s\", \"rooms\": %d, \"shards\": %d, "
          "\"wall_sec\": %.4f, \"tasks_per_wall_sec\": %.1f, "
          "\"events_per_wall_sec\": %.1f}%s\n",
          SchedulerKindName(cell.config.scheduler), cell.config.rooms,
          cell.run.shards, cell.wall_sec, cell.tasks_per_wall_sec,
          cell.events_per_wall_sec, i + 1 < cells.size() ? "," : "");
    }
    out += "    ]\n  }";
  }
  out += "\n}\n";
  return out;
}

}  // namespace elsc
