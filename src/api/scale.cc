#include "src/api/scale.h"

#include <sys/resource.h>

#include <algorithm>
#include <memory>
#include <thread>
#include <utility>

#include "src/base/assert.h"
#include "src/base/string_util.h"
#include "src/harness/run_matrix.h"
#include "src/harness/thread_pool.h"
#include "src/net/socket.h"
#include "src/sched/factory.h"
#include "src/smp/machine.h"
#include "src/workloads/volano.h"

namespace elsc {

namespace {

// Key mixed into DeriveSeed so node seeds are a stable function of
// (scenario seed, node index) — never of the node-to-shard assignment.
constexpr uint64_t kScaleSeedKey = 0x5ca1ab1e5ca1ab1eULL;

constexpr uint64_t kFnvOffset = 14695981039346656037ULL;
constexpr uint64_t kFnvPrime = 1099511628211ULL;

uint64_t FnvFold(uint64_t h, const std::string& s) {
  for (const char c : s) {
    h ^= static_cast<unsigned char>(c);
    h *= kFnvPrime;
  }
  return h;
}

struct ScaleNode;

// Federation relay, transmit side: every `gossip_period` the relay wakes
// and emits one progress beacon per owned room to the node's ring
// successor. The beacons are the scenario's cross-node traffic; the relay
// itself is scheduler-visible load (it sleeps, wakes, and burns CPU like
// any other server thread). Exits once the local chat is complete — there
// is no more progress to report.
class FederationTx : public TaskBehavior {
 public:
  explicit FederationTx(ScaleNode* node) : node_(node) {}
  Segment NextSegment(Machine& machine, Task& task) override;

 private:
  ScaleNode* node_;
  Cycles next_beacon_at_ = 0;
  uint64_t next_beacon_id_ = 0;
};

// Federation relay, receive side: drains the node's fabric inbox, paying a
// processing cost per beacon, and exits on EOF (the coordinator closes
// every inbox once the whole federation's chat is complete and all
// in-flight deliveries have landed).
class FederationRx : public TaskBehavior {
 public:
  explicit FederationRx(ScaleNode* node) : node_(node) {}
  Segment NextSegment(Machine& machine, Task& task) override;

 private:
  ScaleNode* node_;
};

// One node of the federation: an independent Machine simulating its rooms,
// plus the fabric endpoints. Owned by the coordinator; advanced by exactly
// one shard thread per window; destroyed (streaming fold) at the barrier
// where its workload completes.
struct ScaleNode {
  int index = 0;
  int first_room = 0;
  int dst_node = 0;  // Ring successor receiving this node's beacons.
  const ScaleConfig* config = nullptr;
  FabricRouter* router = nullptr;  // Null when gossip is disabled.

  std::unique_ptr<Machine> machine;
  std::unique_ptr<VolanoWorkload> volano;
  std::unique_ptr<SimSocket> inbox;
  std::unique_ptr<FederationTx> tx;
  std::unique_ptr<FederationRx> rx;

  // Federation counters (single-writer: only this node's tasks / delivery
  // events touch them, and those all run on this node's shard thread).
  uint64_t beacons_sent = 0;
  uint64_t beacons_received = 0;
  uint64_t inbox_overflows = 0;
  uint64_t late_writes = 0;
  uint64_t last_remote_progress = 0;  // Payload of the newest beacon seen.

  bool chat_done = false;
  uint64_t completed_window = 0;
};

Segment FederationTx::NextSegment(Machine& machine, Task& task) {
  (void)task;
  const ScaleConfig& cfg = *node_->config;
  if (node_->volano->ChatComplete()) {
    return Segment::Exit(cfg.chat.syscall_cycles);
  }
  const Cycles now = machine.Now();
  if (next_beacon_at_ == 0) {
    next_beacon_at_ = cfg.gossip_period;
  }
  if (now < next_beacon_at_) {
    return Segment::Sleep(cfg.chat.syscall_cycles, next_beacon_at_ - now);
  }
  const int owned_rooms = node_->volano->config().rooms;
  for (int r = 0; r < owned_rooms; ++r) {
    Message beacon;
    beacon.id = ++next_beacon_id_;
    beacon.sender = node_->index;
    beacon.room = node_->first_room + r;
    beacon.sent_at = now;
    beacon.payload = node_->volano->messages_delivered();
    node_->router->Emit(node_->index, node_->dst_node, now, beacon);
    ++node_->beacons_sent;
  }
  next_beacon_at_ = now + cfg.gossip_period;
  return Segment::RunAgain(cfg.beacon_cycles * static_cast<Cycles>(owned_rooms));
}

Segment FederationRx::NextSegment(Machine& machine, Task& task) {
  (void)task;
  const ScaleConfig& cfg = *node_->config;
  SimSocket* inbox = node_->inbox.get();
  Message beacon;
  switch (inbox->TryReadMsg(machine, &beacon)) {
    case SockStatus::kOk:
      ++node_->beacons_received;
      node_->last_remote_progress = beacon.payload;
      return Segment::RunAgain(cfg.gossip_process_cycles);
    case SockStatus::kWouldBlock:
      return Segment::Block(cfg.chat.syscall_cycles, &inbox->read_wait(),
                            [inbox] { return !inbox->ReadReady(); });
    default:  // kEof / kClosed / kReset: the federation shut down.
      return Segment::Exit(cfg.chat.syscall_cycles);
  }
}

// Per-node RunStats snapshot (the sharded analog of the facade's
// CollectStats), memory block included.
RunStats NodeRunStats(const ScaleNode& node) {
  RunStats stats;
  const Machine& machine = *node.machine;
  stats.sched = machine.scheduler().stats();
  stats.machine = machine.stats();
  stats.events = machine.engine().queue_stats();
  stats.memory.task_arena_bytes = machine.task_arena_bytes();
  stats.memory.task_arena_chunks = machine.task_arena_stats().chunks;
  stats.memory.peak_live_sockets =
      node.volano->SocketCount() + (node.inbox ? 1 : 0);
  stats.elapsed_sec = CyclesToSec(machine.Now());
  return stats;
}

}  // namespace

ScaleRun RunShardedVolano(const ScaleConfig& config, int shards) {
  const int num_nodes = config.nodes();
  ELSC_CHECK_MSG(config.rooms >= 1 && num_nodes >= 1, "scale scenario needs rooms");
  ELSC_CHECK_MSG(config.window > 0, "scale window must be positive");
  const Cycles window = config.window;
  const Cycles latency =
      config.fabric_latency == 0 ? window : config.fabric_latency;
  ELSC_CHECK_MSG(latency >= window,
                 "conservative rule: fabric latency must be >= the window");
  const bool gossip = config.gossip_period > 0;
  shards = std::clamp(shards <= 0 ? 1 : shards, 1, num_nodes);

  ScaleRun run;
  run.nodes = num_nodes;
  run.shards = shards;
  run.rooms = static_cast<uint64_t>(config.rooms);
  run.connections = config.connections();
  run.digest = kFnvOffset;

  FabricRouter router(num_nodes, window, latency);

  // ---- Build the federation ----
  std::vector<std::unique_ptr<ScaleNode>> nodes;
  nodes.reserve(static_cast<size_t>(num_nodes));
  for (int i = 0; i < num_nodes; ++i) {
    auto node = std::make_unique<ScaleNode>();
    node->index = i;
    node->first_room = i * config.rooms_per_node;
    node->dst_node = (i + 1) % num_nodes;
    node->config = &config;
    node->router = gossip ? &router : nullptr;

    MachineConfig mc = MakeMachineConfig(
        config.kernel, config.scheduler,
        DeriveSeed(config.seed, kScaleSeedKey, static_cast<uint64_t>(i)));
    node->machine = std::make_unique<Machine>(mc);

    VolanoConfig chat = config.chat;
    chat.rooms = std::min(config.rooms_per_node,
                          config.rooms - node->first_room);
    node->volano = std::make_unique<VolanoWorkload>(*node->machine, chat);
    node->volano->Setup();

    if (gossip) {
      node->inbox = std::make_unique<SimSocket>(
          StrFormat("node%d.fabric.in", i), config.fabric_inbox_capacity);
      node->tx = std::make_unique<FederationTx>(node.get());
      node->rx = std::make_unique<FederationRx>(node.get());
      // The relays are server-process threads: share the server JVM's mm.
      TaskParams params;
      params.mm = node->volano->server_mm();
      params.name = StrFormat("node%d.fedtx", i);
      params.behavior = node->tx.get();
      node->machine->CreateTask(params);
      params.name = StrFormat("node%d.fedrx", i);
      params.behavior = node->rx.get();
      node->machine->CreateTask(params);
    }
    node->machine->Start();
    nodes.push_back(std::move(node));
  }

  // ---- Delivery sink: schedules a beacon's arrival on its destination ----
  // Runs on the coordinator thread at barriers (no shard is advancing), so
  // ScheduleAt into the destination engine is race-free; the event itself
  // fires on whichever shard advances the destination through `arrival`.
  const auto sink = [&nodes](const FabricMessage& msg,
                             Cycles arrival) -> FabricRouter::Delivery {
    ScaleNode* dst = nodes[static_cast<size_t>(msg.dst_node)].get();
    if (dst == nullptr || dst->machine == nullptr) {
      return FabricRouter::Delivery::kRefused;
    }
    dst->machine->engine().ScheduleAt(
        arrival, [dst, payload = msg.payload] {
          switch (dst->inbox->TryWriteMsg(*dst->machine, payload)) {
            case SockStatus::kOk:
              break;
            case SockStatus::kWouldBlock:
              // Bounded inbox full: the beacon is dropped like a datagram
              // against a full receive buffer.
              ++dst->inbox_overflows;
              break;
            default:  // kClosed / kReset: delivery raced the shutdown.
              ++dst->late_writes;
              break;
          }
        });
    return FabricRouter::Delivery::kDelivered;
  };

  // ---- Conservative time-windowed lock-step ----
  std::unique_ptr<ThreadPool> pool;
  if (shards > 1) {
    pool = std::make_unique<ThreadPool>(shards);
  }

  int live = num_nodes;
  int chats_done = 0;
  bool all_completed = true;
  Cycles inbox_close_at = 0;  // 0 = fabric still open.
  bool inboxes_closed = !gossip;
  uint64_t window_index = 0;

  while (live > 0) {
    ++window_index;
    const Cycles barrier = static_cast<Cycles>(window_index) * window;

    // Advance every live node to the barrier. Node->shard assignment is
    // round-robin by node index; any assignment yields identical results
    // (nodes only interact through the fabric, drained below).
    if (pool != nullptr) {
      for (int s = 0; s < shards; ++s) {
        pool->Submit([&nodes, s, shards, barrier] {
          for (size_t n = static_cast<size_t>(s); n < nodes.size();
               n += static_cast<size_t>(shards)) {
            if (nodes[n] != nullptr) {
              nodes[n]->machine->engine().RunUntil(barrier);
            }
          }
        });
      }
      pool->Wait();  // Rethrows the first shard exception, if any.
    } else {
      for (auto& node : nodes) {
        if (node != nullptr) {
          node->machine->engine().RunUntil(barrier);
        }
      }
    }

    // ---- Barrier (coordinator, single-threaded) ----
    // Memory high-water sampling across the live federation.
    uint64_t live_tasks = 0;
    uint64_t arena_bytes = 0;
    uint64_t sockets = 0;
    for (const auto& node : nodes) {
      if (node == nullptr) {
        continue;
      }
      live_tasks += node->machine->live_tasks();
      arena_bytes += node->machine->task_arena_bytes();
      sockets += node->volano->SocketCount() + (node->inbox ? 1 : 0);
    }
    run.peak_live_tasks = std::max(run.peak_live_tasks, live_tasks);
    run.peak_task_arena_bytes = std::max(run.peak_task_arena_bytes, arena_bytes);
    run.peak_live_sockets = std::max(run.peak_live_sockets, sockets);
    run.peak_live_nodes =
        std::max(run.peak_live_nodes, static_cast<uint64_t>(live));

    // Cross-node traffic exchange (deterministic node/emission order).
    if (gossip) {
      router.Exchange(barrier, sink);
    }

    // Chat-completion scan; once the whole federation's chat is done the
    // fabric closes, and after one more latency the inboxes EOF so the
    // receive relays drain whatever is still in flight and exit.
    for (const auto& node : nodes) {
      if (node != nullptr && !node->chat_done && node->volano->ChatComplete()) {
        node->chat_done = true;
        ++chats_done;
      }
    }
    if (gossip && !router.closed() && chats_done == num_nodes) {
      router.Close();
      inbox_close_at = barrier + latency;
    }
    if (!inboxes_closed && inbox_close_at != 0 && barrier >= inbox_close_at) {
      for (const auto& node : nodes) {
        if (node != nullptr) {
          node->inbox->Close(*node->machine);
        }
      }
      inboxes_closed = true;
    }

    // Streaming fold: finished nodes are folded into the aggregate in node
    // order and destroyed — constant live state, not O(total nodes).
    for (size_t n = 0; n < nodes.size(); ++n) {
      ScaleNode* node = nodes[n].get();
      if (node == nullptr || !node->volano->Done()) {
        continue;
      }
      node->completed_window = window_index;
      const RunStats node_stats = NodeRunStats(*node);
      const VolanoResult result = node->volano->Result();
      all_completed = all_completed && result.completed && !node_stats.failed;
      run.messages_sent += result.messages_sent;
      run.messages_delivered += result.messages_delivered;
      run.beacons_sent += node->beacons_sent;
      run.beacons_received += node->beacons_received;
      run.inbox_overflows += node->inbox_overflows;
      run.late_writes += node->late_writes;
      MergeRunStats(&run.stats, node_stats);
      run.digest = FnvFold(
          run.digest,
          StrFormat("n%d@%llu|", node->index,
                    static_cast<unsigned long long>(node->completed_window)) +
              RunStatsDigest(node_stats) +
              StrFormat("|chat:%llu,%llu,%d|fed:%llu,%llu,%llu,%llu;",
                        static_cast<unsigned long long>(result.messages_sent),
                        static_cast<unsigned long long>(result.messages_delivered),
                        result.completed ? 1 : 0,
                        static_cast<unsigned long long>(node->beacons_sent),
                        static_cast<unsigned long long>(node->beacons_received),
                        static_cast<unsigned long long>(node->inbox_overflows),
                        static_cast<unsigned long long>(node->late_writes)));
      nodes[n].reset();
      --live;
    }

    // Simulated-time safety net: fold whatever is still live as failed.
    if (live > 0 && barrier >= config.deadline) {
      for (size_t n = 0; n < nodes.size(); ++n) {
        ScaleNode* node = nodes[n].get();
        if (node == nullptr) {
          continue;
        }
        RunStats node_stats = NodeRunStats(*node);
        node_stats.failed = true;
        run.messages_sent += node->volano->messages_sent();
        run.messages_delivered += node->volano->messages_delivered();
        run.beacons_sent += node->beacons_sent;
        run.beacons_received += node->beacons_received;
        MergeRunStats(&run.stats, node_stats);
        run.digest = FnvFold(run.digest, StrFormat("n%d@deadline;", node->index));
        nodes[n].reset();
        --live;
      }
      all_completed = false;
      run.stats.failed = true;
      if (run.stats.failure.empty()) {
        run.stats.failure = StrFormat(
            "scale deadline exceeded: %d node(s) still live at window %llu",
            num_nodes - chats_done,
            static_cast<unsigned long long>(window_index));
      }
      break;
    }
  }

  run.windows = window_index;
  run.completed = all_completed;
  run.fabric = router.stats();
  run.elapsed_sec = run.stats.elapsed_sec;
  run.throughput = run.elapsed_sec > 0
                       ? static_cast<double>(run.messages_delivered) / run.elapsed_sec
                       : 0.0;
  run.digest = FnvFold(
      run.digest,
      StrFormat("windows:%llu|fabric:%llu,%llu,%llu,%llu|peaks:%llu,%llu,%llu,%llu",
                static_cast<unsigned long long>(run.windows),
                static_cast<unsigned long long>(run.fabric.emitted),
                static_cast<unsigned long long>(run.fabric.routed),
                static_cast<unsigned long long>(run.fabric.refused),
                static_cast<unsigned long long>(run.fabric.dropped_closed),
                static_cast<unsigned long long>(run.peak_live_tasks),
                static_cast<unsigned long long>(run.peak_live_nodes),
                static_cast<unsigned long long>(run.peak_task_arena_bytes),
                static_cast<unsigned long long>(run.peak_live_sockets)));
  return run;
}

std::string ScaleRunSignature(const ScaleRun& run) {
  return StrFormat(
      "scale:%016llx|nodes:%d|windows:%llu|sent:%llu|delivered:%llu|"
      "beacons:%llu/%llu|drops:%llu+%llu|peak_tasks:%llu|peak_arena:%llu|"
      "elapsed:%a|completed:%d",
      static_cast<unsigned long long>(run.digest), run.nodes,
      static_cast<unsigned long long>(run.windows),
      static_cast<unsigned long long>(run.messages_sent),
      static_cast<unsigned long long>(run.messages_delivered),
      static_cast<unsigned long long>(run.beacons_sent),
      static_cast<unsigned long long>(run.beacons_received),
      static_cast<unsigned long long>(run.inbox_overflows),
      static_cast<unsigned long long>(run.late_writes),
      static_cast<unsigned long long>(run.peak_live_tasks),
      static_cast<unsigned long long>(run.peak_task_arena_bytes),
      run.elapsed_sec, run.completed ? 1 : 0);
}

std::string RenderScaleJson(const std::vector<ScaleCell>& cells, uint64_t seed,
                            bool include_timing) {
  std::string out;
  out += StrFormat("{\n  \"seed\": %llu,\n  \"cells\": [\n",
                   static_cast<unsigned long long>(seed));
  for (size_t i = 0; i < cells.size(); ++i) {
    const ScaleCell& cell = cells[i];
    const ScaleRun& r = cell.run;
    out += StrFormat(
        "    {\"kernel\": \"%s\", \"scheduler\": \"%s\", \"rooms\": %llu, "
        "\"connections\": %llu,\n"
        "     \"nodes\": %d, \"windows\": %llu,\n"
        "     \"messages_sent\": %llu, \"messages_delivered\": %llu, "
        "\"throughput\": %.4f, \"elapsed_sim_sec\": %.6f,\n"
        "     \"tasks_simulated\": %llu, \"events_simulated\": %llu,\n"
        "     \"federation\": {\"beacons_sent\": %llu, \"beacons_received\": %llu, "
        "\"inbox_overflows\": %llu, \"late_writes\": %llu, "
        "\"fabric_routed\": %llu, \"fabric_dropped_closed\": %llu},\n"
        "     \"memory\": {\"peak_live_tasks\": %llu, \"peak_live_nodes\": %llu, "
        "\"peak_task_arena_bytes\": %llu, \"peak_live_sockets\": %llu, "
        "\"total_task_arena_bytes\": %llu, \"total_arena_chunks\": %llu},\n"
        "     \"digest\": \"%016llx\", \"completed\": %s}%s\n",
        KernelConfigLabel(cell.config.kernel),
        SchedulerKindName(cell.config.scheduler),
        static_cast<unsigned long long>(r.rooms),
        static_cast<unsigned long long>(r.connections), r.nodes,
        static_cast<unsigned long long>(r.windows),
        static_cast<unsigned long long>(r.messages_sent),
        static_cast<unsigned long long>(r.messages_delivered), r.throughput,
        r.elapsed_sec,
        static_cast<unsigned long long>(r.stats.machine.tasks_created),
        static_cast<unsigned long long>(r.stats.events.fired),
        static_cast<unsigned long long>(r.beacons_sent),
        static_cast<unsigned long long>(r.beacons_received),
        static_cast<unsigned long long>(r.inbox_overflows),
        static_cast<unsigned long long>(r.late_writes),
        static_cast<unsigned long long>(r.fabric.routed),
        static_cast<unsigned long long>(r.fabric.dropped_closed),
        static_cast<unsigned long long>(r.peak_live_tasks),
        static_cast<unsigned long long>(r.peak_live_nodes),
        static_cast<unsigned long long>(r.peak_task_arena_bytes),
        static_cast<unsigned long long>(r.peak_live_sockets),
        static_cast<unsigned long long>(r.stats.memory.task_arena_bytes),
        static_cast<unsigned long long>(r.stats.memory.task_arena_chunks),
        static_cast<unsigned long long>(r.digest),
        r.completed ? "true" : "false", i + 1 < cells.size() ? "," : "");
  }
  out += "  ]";
  if (include_timing) {
    // Host measurements — everything above this block is simulated data and
    // byte-identical across shard/job counts; the CI determinism gate
    // renders with include_timing == false.
    struct rusage usage = {};
    getrusage(RUSAGE_SELF, &usage);
    out += StrFormat(
        ",\n  \"timing\": {\n    \"host_cpus\": %u, \"peak_rss_kb\": %llu,\n"
        "    \"cells\": [\n",
        std::thread::hardware_concurrency(),
        static_cast<unsigned long long>(usage.ru_maxrss));
    for (size_t i = 0; i < cells.size(); ++i) {
      const ScaleCell& cell = cells[i];
      out += StrFormat(
          "      {\"scheduler\": \"%s\", \"rooms\": %d, \"shards\": %d, "
          "\"wall_sec\": %.4f, \"tasks_per_wall_sec\": %.1f, "
          "\"events_per_wall_sec\": %.1f}%s\n",
          SchedulerKindName(cell.config.scheduler), cell.config.rooms,
          cell.run.shards, cell.wall_sec, cell.tasks_per_wall_sec,
          cell.events_per_wall_sec, i + 1 < cells.size() ? "," : "");
    }
    out += "    ]\n  }";
  }
  out += "\n}\n";
  return out;
}

}  // namespace elsc
