#include "src/base/atomic_file.h"

#include <fcntl.h>
#include <unistd.h>

#include <atomic>
#include <cerrno>
#include <cstdio>
#include <cstring>

namespace elsc {

namespace {

void SetError(std::string* error, const std::string& what) {
  if (error != nullptr) {
    *error = what + " (" + std::strerror(errno) + ")";
  }
}

// fsync the directory containing `path` so a completed rename survives a
// crash. Best-effort: some filesystems refuse O_RDONLY directory fsync.
void SyncParentDir(const std::string& path) {
  const size_t slash = path.find_last_of('/');
  const std::string dir = slash == std::string::npos ? "." : path.substr(0, slash);
  const int fd = ::open(dir.empty() ? "/" : dir.c_str(), O_RDONLY);
  if (fd >= 0) {
    ::fsync(fd);
    ::close(fd);
  }
}

}  // namespace

bool AtomicWriteFile(const std::string& path, const std::string& contents,
                     std::string* error) {
  // Unique per process AND per call: concurrent writers targeting the same
  // path (e.g. checkpoint segments from sweep cells that differ only in an
  // execution knob) must not interleave on a shared temp file.
  static std::atomic<uint64_t> counter{0};
  const std::string tmp = path + ".tmp." + std::to_string(::getpid()) + "." +
                          std::to_string(counter.fetch_add(1, std::memory_order_relaxed));
  std::FILE* f = std::fopen(tmp.c_str(), "w");
  if (f == nullptr) {
    SetError(error, "cannot create " + tmp);
    return false;
  }
  bool ok = contents.empty() ||
            std::fwrite(contents.data(), 1, contents.size(), f) == contents.size();
  ok = std::fflush(f) == 0 && ok;
  ok = ::fsync(fileno(f)) == 0 && ok;
  ok = std::fclose(f) == 0 && ok;
  if (!ok) {
    SetError(error, "cannot write " + tmp);
    std::remove(tmp.c_str());
    return false;
  }
  if (std::rename(tmp.c_str(), path.c_str()) != 0) {
    SetError(error, "cannot rename " + tmp + " over " + path);
    std::remove(tmp.c_str());
    return false;
  }
  SyncParentDir(path);
  return true;
}

bool ReadFileToString(const std::string& path, std::string* contents) {
  contents->clear();
  std::FILE* f = std::fopen(path.c_str(), "rb");
  if (f == nullptr) {
    return false;
  }
  char buf[4096];
  size_t got = 0;
  while ((got = std::fread(buf, 1, sizeof(buf), f)) > 0) {
    contents->append(buf, got);
  }
  std::fclose(f);
  return true;
}

}  // namespace elsc
