#include "src/base/assert.h"

namespace elsc {

namespace {
// Innermost active trap for this thread. A plain pointer chain (each trap
// saves the previous head) keeps nesting O(1) with no allocation.
thread_local ViolationTrap* g_active_trap = nullptr;
}  // namespace

ViolationTrap::ViolationTrap() : prev_(g_active_trap) {
  g_active_trap = this;
}

ViolationTrap::~ViolationTrap() {
  g_active_trap = prev_;
}

ViolationTrap* ViolationTrap::Active() {
  return g_active_trap;
}

void VerifyFail(const char* expr, const char* file, int line, const char* msg) {
  ViolationTrap* trap = ViolationTrap::Active();
  if (trap == nullptr) {
    AssertFail(expr, file, line, msg);
  }
  ViolationInfo info;
  info.expr = expr;
  info.file = file;
  info.line = line;
  info.msg = msg;
  trap->Record(info);
  throw InvariantViolation{info};
}

}  // namespace elsc
