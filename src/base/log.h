// Minimal leveled logger for the simulation library.
//
// Logging is off by default (level kWarning) so that benchmark output stays
// clean; tests and examples can raise the level to trace scheduler decisions.

#ifndef SRC_BASE_LOG_H_
#define SRC_BASE_LOG_H_

#include <cstdarg>

namespace elsc {

enum class LogLevel {
  kTrace = 0,
  kDebug = 1,
  kInfo = 2,
  kWarning = 3,
  kError = 4,
};

// Sets the global minimum level that will be emitted.
void SetLogLevel(LogLevel level);
LogLevel GetLogLevel();

// printf-style logging. Cheap when the level is disabled (single comparison).
void LogMessage(LogLevel level, const char* fmt, ...) __attribute__((format(printf, 2, 3)));

bool LogEnabled(LogLevel level);

}  // namespace elsc

#define ELSC_LOG_TRACE(...) ::elsc::LogMessage(::elsc::LogLevel::kTrace, __VA_ARGS__)
#define ELSC_LOG_DEBUG(...) ::elsc::LogMessage(::elsc::LogLevel::kDebug, __VA_ARGS__)
#define ELSC_LOG_INFO(...) ::elsc::LogMessage(::elsc::LogLevel::kInfo, __VA_ARGS__)
#define ELSC_LOG_WARN(...) ::elsc::LogMessage(::elsc::LogLevel::kWarning, __VA_ARGS__)
#define ELSC_LOG_ERROR(...) ::elsc::LogMessage(::elsc::LogLevel::kError, __VA_ARGS__)

#endif  // SRC_BASE_LOG_H_
