#include "src/base/watchdog.h"

namespace elsc {

thread_local CellWatchdog* CellWatchdog::active_ = nullptr;

namespace {
// How many Poll() hits to absorb between steady_clock reads. Engine::RunUntil
// polls once per event; at the simulator's ~20M events/s this checks the
// clock a few thousand times a second — responsive to within a few ms while
// keeping the clock read off the hot path.
constexpr uint32_t kPollsPerClockRead = 4096;
}  // namespace

CellWatchdog::CellWatchdog(double budget_sec) : budget_sec_(budget_sec) {
  if (budget_sec <= 0.0) {
    return;  // Disabled: leave the previous (or no) watchdog in place.
  }
  deadline_ = std::chrono::steady_clock::now() +
              std::chrono::duration_cast<std::chrono::steady_clock::duration>(
                  std::chrono::duration<double>(budget_sec));
  prev_ = active_;
  active_ = this;
  countdown_ = kPollsPerClockRead;
  armed_ = true;
}

CellWatchdog::~CellWatchdog() {
  if (armed_) {
    active_ = prev_;
  }
}

void CellWatchdog::Check() {
  if (countdown_-- != 0) {
    return;
  }
  countdown_ = kPollsPerClockRead;
  if (std::chrono::steady_clock::now() >= deadline_) {
    throw CellDeadlineExceeded{budget_sec_};
  }
}

}  // namespace elsc
