// A small fixed-capacity occupancy bitmap with find-first/find-last-set
// queries, the building block behind the O(1) run-queue table scans.
//
// This is the classic priority-bitmap trick (the one the Linux 2.6 O(1)
// scheduler used to replace "scan all lists for the highest populated one"):
// keep one bit per list, and turn every "highest populated list" question
// into a count-leading-zeros instruction. The ELSC table tracks three of
// these (occupied / active / exhausted); the Machine uses one as its idle-CPU
// mask.
//
// Capacity is bounded (kMaxBits) so the storage is a flat in-object array —
// no heap allocation, no pointer chase on the hot path. The bound comfortably
// covers the widest table the ablation benches sweep (50 lists) and any
// simulated CPU count.

#ifndef SRC_BASE_BITMAP_H_
#define SRC_BASE_BITMAP_H_

#include <cstdint>

#include "src/base/assert.h"

namespace elsc {

class OccupancyBitmap {
 public:
  // 4 × 64 = 256 positions; plenty for 50-list tables and 64-CPU machines.
  static constexpr int kMaxBits = 256;
  static constexpr int kWordBits = 64;
  static constexpr int kWords = kMaxBits / kWordBits;

  OccupancyBitmap() = default;
  explicit OccupancyBitmap(int bits) { Reset(bits); }

  // Sets the logical size (queries never return indices >= `bits`) and
  // clears every bit.
  void Reset(int bits) {
    ELSC_CHECK_MSG(bits >= 0 && bits <= kMaxBits, "OccupancyBitmap capacity exceeded");
    bits_ = bits;
    ClearAll();
  }

  int bits() const { return bits_; }

  void Set(int i) { words_[Word(i)] |= Mask(i); }
  void Clear(int i) { words_[Word(i)] &= ~Mask(i); }
  void Assign(int i, bool value) {
    if (value) {
      Set(i);
    } else {
      Clear(i);
    }
  }
  bool Test(int i) const { return (words_[Word(i)] & Mask(i)) != 0; }

  void ClearAll() {
    for (uint64_t& w : words_) {
      w = 0;
    }
  }
  // Copies another bitmap's bits (sizes must match). Used for the
  // "active = occupied" reset after a global counter recalculation.
  void CopyFrom(const OccupancyBitmap& other) {
    ELSC_CHECK(bits_ == other.bits_);
    for (int w = 0; w < kWords; ++w) {
      words_[w] = other.words_[w];
    }
  }

  bool Any() const {
    uint64_t acc = 0;
    for (const uint64_t w : words_) {
      acc |= w;
    }
    return acc != 0;
  }
  bool None() const { return !Any(); }

  // Index of the highest set bit, or -1 if none.
  int Highest() const { return HighestAtOrBelow(bits_ - 1); }

  // Index of the highest set bit <= `limit`, or -1. `limit` may be -1 (empty
  // range) or beyond bits() (clamped), matching "next populated list at or
  // below" semantics.
  int HighestAtOrBelow(int limit) const {
    if (limit >= bits_) {
      limit = bits_ - 1;
    }
    if (limit < 0) {
      return -1;
    }
    int w = Word(limit);
    // Mask off bits above `limit` within its word.
    uint64_t word = words_[w] & (~uint64_t{0} >> (kWordBits - 1 - Bit(limit)));
    while (true) {
      if (word != 0) {
        return w * kWordBits + (kWordBits - 1 - __builtin_clzll(word));
      }
      if (w == 0) {
        return -1;
      }
      word = words_[--w];
    }
  }

  // Index of the lowest set bit, or -1 if none.
  int Lowest() const {
    for (int w = 0; w * kWordBits < bits_; ++w) {
      if (words_[w] != 0) {
        return w * kWordBits + __builtin_ctzll(words_[w]);
      }
    }
    return -1;
  }

  int PopCount() const {
    int count = 0;
    for (const uint64_t w : words_) {
      count += __builtin_popcountll(w);
    }
    return count;
  }

 private:
  static int Word(int i) { return i >> 6; }
  static int Bit(int i) { return i & 63; }
  static uint64_t Mask(int i) { return uint64_t{1} << Bit(i); }

  uint64_t words_[kWords] = {0, 0, 0, 0};
  int bits_ = 0;
};

}  // namespace elsc

#endif  // SRC_BASE_BITMAP_H_
