#include "src/base/log.h"

#include <atomic>
#include <cstdarg>
#include <cstdio>

namespace elsc {

namespace {

std::atomic<LogLevel> g_level{LogLevel::kWarning};

const char* LevelName(LogLevel level) {
  switch (level) {
    case LogLevel::kTrace:
      return "TRACE";
    case LogLevel::kDebug:
      return "DEBUG";
    case LogLevel::kInfo:
      return "INFO";
    case LogLevel::kWarning:
      return "WARN";
    case LogLevel::kError:
      return "ERROR";
  }
  return "?";
}

}  // namespace

void SetLogLevel(LogLevel level) { g_level.store(level, std::memory_order_relaxed); }

LogLevel GetLogLevel() { return g_level.load(std::memory_order_relaxed); }

bool LogEnabled(LogLevel level) {
  return static_cast<int>(level) >= static_cast<int>(GetLogLevel());
}

void LogMessage(LogLevel level, const char* fmt, ...) {
  if (!LogEnabled(level)) {
    return;
  }
  std::fprintf(stderr, "[%s] ", LevelName(level));
  va_list args;
  va_start(args, fmt);
  std::vfprintf(stderr, fmt, args);
  va_end(args);
  std::fputc('\n', stderr);
}

}  // namespace elsc
