// Small string formatting helpers shared by the stats/table printers.

#ifndef SRC_BASE_STRING_UTIL_H_
#define SRC_BASE_STRING_UTIL_H_

#include <cstdint>
#include <string>
#include <vector>

namespace elsc {

// printf-style formatting into a std::string.
std::string StrFormat(const char* fmt, ...) __attribute__((format(printf, 1, 2)));

// 1234567 -> "1,234,567".
std::string WithThousandsSeparators(uint64_t value);

// Seconds -> "m:ss.cc" (e.g. 401.41 -> "6:41.41"), the format of Table 2.
std::string FormatMinSec(double seconds);

// Joins parts with the given separator.
std::string Join(const std::vector<std::string>& parts, const std::string& sep);

// Left/right padding to a fixed width (spaces); never truncates.
std::string PadLeft(const std::string& s, size_t width);
std::string PadRight(const std::string& s, size_t width);

}  // namespace elsc

#endif  // SRC_BASE_STRING_UTIL_H_
