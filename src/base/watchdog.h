// Cooperative per-cell wall-clock watchdog.
//
// The simulator is single-threaded within a cell, so a wedged cell (livelock,
// pathological scheduler, runaway event loop) cannot be interrupted from
// outside without killing the whole process. Instead the watchdog is
// *cooperative*: the supervisor arms a thread-local deadline around the cell
// body, and the simulation's inner loops (Engine::RunUntil /
// RunUntilCondition) call CellWatchdog::Poll() once per event batch. When the
// deadline passes, Poll() throws CellDeadlineExceeded, which unwinds the cell
// cleanly through the Run* facades into the supervisor.
//
// CellDeadlineExceeded is deliberately NOT derived from std::exception, for
// the same reason InvariantViolation is not (src/base/assert.h): the facades
// catch std::exception to convert workload bugs into failed RunStats, and a
// deadline must punch through those handlers to reach the supervisor, which
// classifies it as transient (FailureKind::kTimeout) and retries with a
// larger budget.
//
// Poll() costs one thread-local load and a predictable branch when no
// watchdog is armed; the actual clock read is rate-limited inside Check() so
// even armed runs only touch steady_clock every few thousand polls.

#ifndef SRC_BASE_WATCHDOG_H_
#define SRC_BASE_WATCHDOG_H_

#include <chrono>
#include <cstdint>

namespace elsc {

// Thrown by CellWatchdog::Poll() when the armed deadline has passed.
struct CellDeadlineExceeded {
  double budget_sec = 0.0;  // The budget that was exceeded.
};

class CellWatchdog {
 public:
  // Arms a deadline of `budget_sec` wall-clock seconds on this thread.
  // A budget <= 0 installs nothing (Poll() stays a no-op), so callers can
  // pass a config value straight through without branching.
  explicit CellWatchdog(double budget_sec);
  ~CellWatchdog();

  CellWatchdog(const CellWatchdog&) = delete;
  CellWatchdog& operator=(const CellWatchdog&) = delete;

  // Called from simulation inner loops. No-op unless a watchdog is armed on
  // this thread; throws CellDeadlineExceeded once the deadline passes.
  static void Poll() {
    if (active_ != nullptr) {
      active_->Check();
    }
  }

  // True iff a watchdog is armed on the current thread (used by tests).
  static bool Armed() { return active_ != nullptr; }

 private:
  void Check();

  static thread_local CellWatchdog* active_;

  double budget_sec_ = 0.0;
  std::chrono::steady_clock::time_point deadline_;
  CellWatchdog* prev_ = nullptr;  // Watchdogs nest like ViolationTraps.
  uint32_t countdown_ = 0;        // Polls remaining until the next clock read.
  bool armed_ = false;
};

}  // namespace elsc

#endif  // SRC_BASE_WATCHDOG_H_
