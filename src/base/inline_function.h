// Move-only callable with inline-only storage, for hot-path predicates.
//
// The kernel layer passes small closures around by value (a Segment's
// still_blocked re-check travels behavior → segment → task), and with
// std::function every one of those moves is an indirect manager call even
// when the capture is a single pointer. InlineFunction stores the capture
// in place — there is deliberately no heap fallback, a static_assert keeps
// callables within the buffer — and trivially-copyable callables (all of
// the current ones) move by fixed-size memcpy with no indirect calls.
//
// This is the same small-buffer design as src/sim/event_callback.h; that
// type stays separate because the event queue's callback is mutable and
// void(), while these predicates are const-invocable with a result.

#ifndef SRC_BASE_INLINE_FUNCTION_H_
#define SRC_BASE_INLINE_FUNCTION_H_

#include <cstddef>
#include <cstring>
#include <new>
#include <type_traits>
#include <utility>

namespace elsc {

template <typename R>
class InlineFunction {
 public:
  // Generous for predicates that capture a pointer or two.
  static constexpr size_t kInlineSize = 32;

  InlineFunction() = default;
  InlineFunction(std::nullptr_t) {}  // NOLINT(google-explicit-constructor)

  template <typename F,
            typename = std::enable_if_t<
                !std::is_same_v<std::decay_t<F>, InlineFunction> &&
                std::is_invocable_r_v<R, const std::decay_t<F>&>>>
  InlineFunction(F&& f) {  // NOLINT(google-explicit-constructor)
    using Fn = std::decay_t<F>;
    static_assert(sizeof(Fn) <= kInlineSize && alignof(Fn) <= alignof(std::max_align_t),
                  "capture too large for InlineFunction; shrink it or capture by pointer");
    static_assert(std::is_nothrow_move_constructible_v<Fn>,
                  "InlineFunction requires nothrow-movable callables");
    ::new (static_cast<void*>(storage_)) Fn(std::forward<F>(f));
    ops_ = &OpsFor<Fn>::kOps;
  }

  InlineFunction(InlineFunction&& other) noexcept : ops_(other.ops_) {
    if (ops_ != nullptr) {
      MoveFrom(other);
    }
  }

  InlineFunction& operator=(InlineFunction&& other) noexcept {
    if (this != &other) {
      Reset();
      ops_ = other.ops_;
      if (ops_ != nullptr) {
        MoveFrom(other);
      }
    }
    return *this;
  }

  InlineFunction& operator=(std::nullptr_t) {
    Reset();
    return *this;
  }

  InlineFunction(const InlineFunction&) = delete;
  InlineFunction& operator=(const InlineFunction&) = delete;

  ~InlineFunction() { Reset(); }

  R operator()() const { return ops_->invoke(storage_); }

  explicit operator bool() const { return ops_ != nullptr; }

 private:
  struct Ops {
    R (*invoke)(const void* storage);
    // Move-constructs the callable from `from` into `to`, destroying `from`.
    void (*relocate)(void* from, void* to);
    void (*destroy)(void* storage);
    // Trivially-copyable callables relocate by memcpy, skip destroy.
    bool trivial;
  };

  template <typename Fn>
  struct OpsFor {
    static R Invoke(const void* storage) {
      return (*std::launder(reinterpret_cast<const Fn*>(storage)))();
    }
    static void Relocate(void* from, void* to) {
      Fn* src = std::launder(reinterpret_cast<Fn*>(from));
      ::new (to) Fn(std::move(*src));
      src->~Fn();
    }
    static void Destroy(void* storage) { std::launder(reinterpret_cast<Fn*>(storage))->~Fn(); }
    static constexpr Ops kOps{&Invoke, &Relocate, &Destroy, std::is_trivially_copyable_v<Fn>};
  };

  // Precondition: ops_ == other.ops_ != nullptr. Leaves `other` empty.
  void MoveFrom(InlineFunction& other) noexcept {
    if (ops_->trivial) {
      // Fixed-size, branch-free copy; tail bytes are indeterminate but
      // unused, which GCC's -Wuninitialized cannot see once this inlines.
#pragma GCC diagnostic push
#pragma GCC diagnostic ignored "-Wuninitialized"
#pragma GCC diagnostic ignored "-Wmaybe-uninitialized"
      std::memcpy(storage_, other.storage_, kInlineSize);
#pragma GCC diagnostic pop
    } else {
      ops_->relocate(other.storage_, storage_);
    }
    other.ops_ = nullptr;
  }

  void Reset() {
    if (ops_ != nullptr) {
      if (!ops_->trivial) {
        ops_->destroy(storage_);
      }
      ops_ = nullptr;
    }
  }

  const Ops* ops_ = nullptr;
  alignas(std::max_align_t) unsigned char storage_[kInlineSize];
};

}  // namespace elsc

#endif  // SRC_BASE_INLINE_FUNCTION_H_
