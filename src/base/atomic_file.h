// Crash-consistent whole-file writes: write-temp + fsync + rename.
//
// A plain fopen/fwrite sequence interrupted by SIGKILL or power loss can
// leave a torn file — half a record, or a valid prefix with a corrupt tail.
// AtomicWriteFile guarantees readers observe either the old contents or the
// complete new contents, never a mixture: the bytes are written to a
// temporary sibling, fsync'd to media, then rename(2)'d over the target
// (atomic within a filesystem), and the parent directory is fsync'd so the
// rename itself is durable. Used by the run journal, the quarantine file,
// and the scale-layer checkpoint segments.

#ifndef SRC_BASE_ATOMIC_FILE_H_
#define SRC_BASE_ATOMIC_FILE_H_

#include <string>

namespace elsc {

// Atomically replaces `path` with `contents`. Returns false (with *error
// set, when non-null) on any I/O failure; the target is untouched and the
// temporary is cleaned up best-effort.
bool AtomicWriteFile(const std::string& path, const std::string& contents,
                     std::string* error = nullptr);

// Reads the whole file into *contents. Returns false if the file cannot be
// opened (missing file is the common, non-error case for callers that treat
// absence as "start fresh").
bool ReadFileToString(const std::string& path, std::string* contents);

}  // namespace elsc

#endif  // SRC_BASE_ATOMIC_FILE_H_
