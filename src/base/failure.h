// Failure taxonomy for supervised execution.
//
// The run supervisor (src/harness/supervisor.h) converts everything a matrix
// cell can do wrong — throw, trip an ELSC_VERIFY invariant, exceed its
// wall-clock deadline, exhaust memory — into a (kind, class) pair:
//
//   kind   — what happened mechanically (timeout, exception, violation, ...)
//   class  — what to do about it:
//            kTransient      retry with backoff (the failure depends on the
//                            host machine's moment-to-moment state, not on
//                            the cell's inputs: wall-clock deadlines,
//                            resource exhaustion)
//            kDeterministic  quarantine immediately (cells are pure functions
//                            of their index/seed, so an exception or an
//                            invariant violation will recur on every retry)
//
// This sits on top of ViolationTrap (src/base/assert.h): a trapped
// ELSC_VERIFY becomes FailureKind::kViolation rather than a process abort.

#ifndef SRC_BASE_FAILURE_H_
#define SRC_BASE_FAILURE_H_

namespace elsc {

enum class FailureKind {
  kNone = 0,
  kTimeout,    // Cell watchdog deadline expired (CellDeadlineExceeded).
  kException,  // Uncaught std::exception (or unknown throw) from the cell.
  kViolation,  // ELSC_VERIFY invariant violation trapped during the cell.
  kResource,   // Host resource exhaustion (std::bad_alloc and friends).
};

enum class FailureClass {
  kNone = 0,
  kTransient,      // Retry with bounded exponential backoff.
  kDeterministic,  // Quarantine with a repro line; retrying cannot help.
};

inline const char* FailureKindName(FailureKind kind) {
  switch (kind) {
    case FailureKind::kNone:      return "none";
    case FailureKind::kTimeout:   return "timeout";
    case FailureKind::kException: return "exception";
    case FailureKind::kViolation: return "violation";
    case FailureKind::kResource:  return "resource";
  }
  return "?";
}

inline const char* FailureClassName(FailureClass cls) {
  switch (cls) {
    case FailureClass::kNone:          return "none";
    case FailureClass::kTransient:     return "transient";
    case FailureClass::kDeterministic: return "deterministic";
  }
  return "?";
}

// Policy: cells are pure functions of (cell index, seed), so only failures
// caused by the *host* rather than the *inputs* are worth retrying.
inline FailureClass Classify(FailureKind kind) {
  switch (kind) {
    case FailureKind::kNone:      return FailureClass::kNone;
    case FailureKind::kTimeout:   return FailureClass::kTransient;
    case FailureKind::kResource:  return FailureClass::kTransient;
    case FailureKind::kException: return FailureClass::kDeterministic;
    case FailureKind::kViolation: return FailureClass::kDeterministic;
  }
  return FailureClass::kDeterministic;
}

}  // namespace elsc

#endif  // SRC_BASE_FAILURE_H_
