#include "src/base/string_util.h"

#include <cstdarg>
#include <cstdio>
#include <cmath>

namespace elsc {

std::string StrFormat(const char* fmt, ...) {
  va_list args;
  va_start(args, fmt);
  va_list args_copy;
  va_copy(args_copy, args);
  const int needed = std::vsnprintf(nullptr, 0, fmt, args);
  va_end(args);
  std::string out;
  if (needed > 0) {
    out.resize(static_cast<size_t>(needed));
    std::vsnprintf(out.data(), out.size() + 1, fmt, args_copy);
  }
  va_end(args_copy);
  return out;
}

std::string WithThousandsSeparators(uint64_t value) {
  std::string digits = std::to_string(value);
  std::string out;
  out.reserve(digits.size() + digits.size() / 3);
  size_t count = 0;
  for (auto it = digits.rbegin(); it != digits.rend(); ++it) {
    if (count != 0 && count % 3 == 0) {
      out.push_back(',');
    }
    out.push_back(*it);
    ++count;
  }
  return {out.rbegin(), out.rend()};
}

std::string FormatMinSec(double seconds) {
  if (seconds < 0) {
    seconds = 0;
  }
  // Round to centiseconds first so 59.999 carries into the next minute
  // instead of printing "0:60.00".
  const auto centis = static_cast<uint64_t>(seconds * 100.0 + 0.5);
  const uint64_t whole_minutes = centis / 6000;
  const double rem = static_cast<double>(centis % 6000) / 100.0;
  return StrFormat("%llu:%05.2f", static_cast<unsigned long long>(whole_minutes), rem);
}

std::string Join(const std::vector<std::string>& parts, const std::string& sep) {
  std::string out;
  for (size_t i = 0; i < parts.size(); ++i) {
    if (i != 0) {
      out += sep;
    }
    out += parts[i];
  }
  return out;
}

std::string PadLeft(const std::string& s, size_t width) {
  if (s.size() >= width) {
    return s;
  }
  return std::string(width - s.size(), ' ') + s;
}

std::string PadRight(const std::string& s, size_t width) {
  if (s.size() >= width) {
    return s;
  }
  return s + std::string(width - s.size(), ' ');
}

}  // namespace elsc
