// Deterministic pseudo-random number generation for the simulation.
//
// The simulation must be fully reproducible from a seed (EXPERIMENTS.md
// records seeded runs), so we provide our own xoshiro256** generator rather
// than relying on std::mt19937 distribution implementations, whose results
// may differ across standard libraries.

#ifndef SRC_BASE_RNG_H_
#define SRC_BASE_RNG_H_

#include <cmath>
#include <cstdint>

#include "src/base/assert.h"

namespace elsc {

// xoshiro256** 1.0 by Blackman & Vigna (public domain reference algorithm),
// seeded via splitmix64 as recommended by the authors.
class Rng {
 public:
  explicit Rng(uint64_t seed) { Seed(seed); }

  void Seed(uint64_t seed) {
    uint64_t x = seed;
    for (auto& word : state_) {
      word = SplitMix64(&x);
    }
  }

  // Uniform over all 64-bit values.
  uint64_t Next() {
    const uint64_t result = Rotl(state_[1] * 5, 7) * 9;
    const uint64_t t = state_[1] << 17;
    state_[2] ^= state_[0];
    state_[3] ^= state_[1];
    state_[1] ^= state_[2];
    state_[0] ^= state_[3];
    state_[2] ^= t;
    state_[3] = Rotl(state_[3], 45);
    return result;
  }

  // Uniform integer in [0, bound). bound must be nonzero.
  uint64_t NextBelow(uint64_t bound) {
    ELSC_CHECK(bound != 0);
    // Lemire's multiply-shift rejection method for unbiased bounded values.
    uint64_t x = Next();
    __uint128_t m = static_cast<__uint128_t>(x) * static_cast<__uint128_t>(bound);
    auto low = static_cast<uint64_t>(m);
    if (low < bound) {
      const uint64_t threshold = -bound % bound;
      while (low < threshold) {
        x = Next();
        m = static_cast<__uint128_t>(x) * static_cast<__uint128_t>(bound);
        low = static_cast<uint64_t>(m);
      }
    }
    return static_cast<uint64_t>(m >> 64);
  }

  // Uniform integer in [lo, hi] inclusive.
  int64_t NextInRange(int64_t lo, int64_t hi) {
    ELSC_CHECK(lo <= hi);
    const auto span = static_cast<uint64_t>(hi - lo) + 1;
    return lo + static_cast<int64_t>(NextBelow(span));
  }

  // Uniform double in [0, 1).
  double NextDouble() {
    return static_cast<double>(Next() >> 11) * 0x1.0p-53;
  }

  // Returns true with probability p (clamped to [0, 1]).
  bool NextBool(double p) {
    if (p <= 0.0) {
      return false;
    }
    if (p >= 1.0) {
      return true;
    }
    return NextDouble() < p;
  }

  // Exponentially distributed value with the given mean (> 0).
  double NextExponential(double mean) {
    ELSC_CHECK(mean > 0.0);
    double u = NextDouble();
    // Avoid log(0).
    if (u <= 0.0) {
      u = 0x1.0p-53;
    }
    return -mean * std::log(u);
  }

  // Forks an independent child stream; used to give each simulated task its
  // own generator so that adding tasks does not perturb others' draws.
  Rng Fork() { return Rng(Next() ^ 0x9e3779b97f4a7c15ull); }

 private:
  static uint64_t SplitMix64(uint64_t* x) {
    *x += 0x9e3779b97f4a7c15ull;
    uint64_t z = *x;
    z = (z ^ (z >> 30)) * 0xbf58476d1ce4e5b9ull;
    z = (z ^ (z >> 27)) * 0x94d049bb133111ebull;
    return z ^ (z >> 31);
  }

  static uint64_t Rotl(uint64_t v, int k) { return (v << k) | (v >> (64 - k)); }

  uint64_t state_[4] = {};
};

}  // namespace elsc

#endif  // SRC_BASE_RNG_H_
