// Simulated time units.
//
// The simulation clock counts CPU cycles of a 400 MHz Pentium II-era machine
// (the paper's IBM Netfinity testbeds used 400 MHz Pentium II / Xeon parts).
// The scheduler tick is 10 ms, i.e. 4,000,000 cycles, matching HZ=100 in
// Linux 2.3.99-pre4.

#ifndef SRC_BASE_TIME_UNITS_H_
#define SRC_BASE_TIME_UNITS_H_

#include <cstdint>

namespace elsc {

using Cycles = uint64_t;

inline constexpr uint64_t kCpuHz = 400'000'000;          // 400 MHz.
inline constexpr Cycles kCyclesPerUs = kCpuHz / 1'000'000;
inline constexpr Cycles kCyclesPerMs = kCpuHz / 1'000;
inline constexpr Cycles kCyclesPerSec = kCpuHz;
inline constexpr Cycles kTickCycles = 10 * kCyclesPerMs;  // 10 ms scheduler tick.

constexpr Cycles UsToCycles(uint64_t us) { return us * kCyclesPerUs; }
constexpr Cycles MsToCycles(uint64_t ms) { return ms * kCyclesPerMs; }
constexpr Cycles SecToCycles(uint64_t sec) { return sec * kCyclesPerSec; }

constexpr double CyclesToUs(Cycles c) { return static_cast<double>(c) / kCyclesPerUs; }
constexpr double CyclesToMs(Cycles c) { return static_cast<double>(c) / kCyclesPerMs; }
constexpr double CyclesToSec(Cycles c) { return static_cast<double>(c) / kCyclesPerSec; }

}  // namespace elsc

#endif  // SRC_BASE_TIME_UNITS_H_
