// Assertion macros used throughout the library.
//
// ELSC_CHECK(cond)      — always-on invariant check; aborts with a message.
// ELSC_CHECK_MSG(c, m)  — always-on check with an extra human-readable message.
// ELSC_DCHECK(cond)     — debug-only check, compiled out in NDEBUG builds.
// ELSC_VERIFY(cond)     — recoverable invariant check: if a ViolationTrap is
//                         active on this thread the failure is recorded there
//                         and an InvariantViolation is thrown so the run can
//                         unwind into a failed RunStats; otherwise it aborts
//                         exactly like ELSC_CHECK.
// ELSC_VERIFY_MSG(c, m) — recoverable check with an extra message.
//
// These are used instead of <cassert> so that release builds (the default for
// benchmarks) still validate the simulation's kernel invariants: a scheduler
// that silently corrupts its run queue produces plausible-looking garbage.
//
// Library hot paths (run-queue operations, wait queues, invariant sweeps) use
// the ELSC_VERIFY variants so that bench matrices and the fault-injection
// auditor can degrade gracefully; tests and configuration validation keep the
// hard-aborting ELSC_CHECK.

#ifndef SRC_BASE_ASSERT_H_
#define SRC_BASE_ASSERT_H_

#include <cstdio>
#include <cstdlib>

namespace elsc {

[[noreturn]] inline void AssertFail(const char* expr, const char* file, int line,
                                    const char* msg) {
  std::fprintf(stderr, "ELSC_CHECK failed: %s\n  at %s:%d\n", expr, file, line);
  if (msg != nullptr) {
    std::fprintf(stderr, "  %s\n", msg);
  }
  std::abort();
}

// Where an ELSC_VERIFY fired. All members point at string literals baked into
// the binary, so the struct is trivially copyable and never owns memory.
struct ViolationInfo {
  const char* expr = nullptr;
  const char* file = nullptr;
  int line = 0;
  const char* msg = nullptr;  // nullptr when the _MSG variant was not used
};

// Thrown by ELSC_VERIFY when a ViolationTrap is active on the current thread.
// Deliberately not derived from std::exception: nothing should catch this by
// accident — only the run loops that installed a trap.
struct InvariantViolation {
  ViolationInfo info;
};

// Out-of-line failure path for ELSC_VERIFY: records into the active trap and
// throws InvariantViolation, or falls back to AssertFail when no trap is
// installed (so library code still fails loudly in tests and direct use).
[[noreturn]] void VerifyFail(const char* expr, const char* file, int line,
                             const char* msg);

// RAII scope that makes ELSC_VERIFY failures recoverable on this thread.
// Traps nest: the innermost active trap receives the violation, and the
// previous trap (if any) is restored on destruction. Thread-local, so harness
// worker threads running independent cells never observe each other's traps.
class ViolationTrap {
 public:
  ViolationTrap();
  ~ViolationTrap();

  ViolationTrap(const ViolationTrap&) = delete;
  ViolationTrap& operator=(const ViolationTrap&) = delete;

  bool triggered() const { return triggered_; }
  const ViolationInfo& info() const { return info_; }

  // The innermost active trap on this thread, or nullptr.
  static ViolationTrap* Active();

 private:
  friend void VerifyFail(const char* expr, const char* file, int line,
                         const char* msg);

  void Record(const ViolationInfo& info) {
    // Keep the first violation: later ones are usually knock-on damage.
    if (!triggered_) {
      triggered_ = true;
      info_ = info;
    }
  }

  ViolationTrap* prev_ = nullptr;
  bool triggered_ = false;
  ViolationInfo info_;
};

}  // namespace elsc

#define ELSC_CHECK(cond)                                        \
  do {                                                          \
    if (!(cond)) {                                              \
      ::elsc::AssertFail(#cond, __FILE__, __LINE__, nullptr);   \
    }                                                           \
  } while (0)

#define ELSC_CHECK_MSG(cond, msg)                               \
  do {                                                          \
    if (!(cond)) {                                              \
      ::elsc::AssertFail(#cond, __FILE__, __LINE__, (msg));     \
    }                                                           \
  } while (0)

#define ELSC_VERIFY(cond)                                       \
  do {                                                          \
    if (!(cond)) {                                              \
      ::elsc::VerifyFail(#cond, __FILE__, __LINE__, nullptr);   \
    }                                                           \
  } while (0)

#define ELSC_VERIFY_MSG(cond, msg)                              \
  do {                                                          \
    if (!(cond)) {                                              \
      ::elsc::VerifyFail(#cond, __FILE__, __LINE__, (msg));     \
    }                                                           \
  } while (0)

#ifdef NDEBUG
#define ELSC_DCHECK(cond) \
  do {                    \
  } while (0)
#else
#define ELSC_DCHECK(cond) ELSC_CHECK(cond)
#endif

#endif  // SRC_BASE_ASSERT_H_
