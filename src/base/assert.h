// Assertion macros used throughout the library.
//
// ELSC_CHECK(cond)      — always-on invariant check; aborts with a message.
// ELSC_CHECK_MSG(c, m)  — always-on check with an extra human-readable message.
// ELSC_DCHECK(cond)     — debug-only check, compiled out in NDEBUG builds.
//
// These are used instead of <cassert> so that release builds (the default for
// benchmarks) still validate the simulation's kernel invariants: a scheduler
// that silently corrupts its run queue produces plausible-looking garbage.

#ifndef SRC_BASE_ASSERT_H_
#define SRC_BASE_ASSERT_H_

#include <cstdio>
#include <cstdlib>

namespace elsc {

[[noreturn]] inline void AssertFail(const char* expr, const char* file, int line,
                                    const char* msg) {
  std::fprintf(stderr, "ELSC_CHECK failed: %s\n  at %s:%d\n", expr, file, line);
  if (msg != nullptr) {
    std::fprintf(stderr, "  %s\n", msg);
  }
  std::abort();
}

}  // namespace elsc

#define ELSC_CHECK(cond)                                        \
  do {                                                          \
    if (!(cond)) {                                              \
      ::elsc::AssertFail(#cond, __FILE__, __LINE__, nullptr);   \
    }                                                           \
  } while (0)

#define ELSC_CHECK_MSG(cond, msg)                               \
  do {                                                          \
    if (!(cond)) {                                              \
      ::elsc::AssertFail(#cond, __FILE__, __LINE__, (msg));     \
    }                                                           \
  } while (0)

#ifdef NDEBUG
#define ELSC_DCHECK(cond) \
  do {                    \
  } while (0)
#else
#define ELSC_DCHECK(cond) ELSC_CHECK(cond)
#endif

#endif  // SRC_BASE_ASSERT_H_
