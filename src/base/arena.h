// SlabArena: a chunked slab allocator handing out stable pointers.
//
// Objects are constructed in fixed-size chunks (no per-object heap
// allocation, no reallocation ever — pointers remain valid for the arena's
// lifetime, which the simulator depends on: Tasks are linked into intrusive
// lists and captured by pending events). Released slots go onto a freelist
// and are reused by later allocations, so long churn-heavy runs touch a
// working set proportional to the peak population instead of the total
// number of objects ever created.
//
// The arena tracks per-slot liveness so its destructor can destroy whatever
// is still alive, in creation order within each chunk.

#ifndef SRC_BASE_ARENA_H_
#define SRC_BASE_ARENA_H_

#include <cstddef>
#include <cstdint>
#include <memory>
#include <new>
#include <utility>
#include <vector>

#include "src/base/assert.h"

namespace elsc {

struct ArenaStats {
  uint64_t allocated = 0;  // Total Allocate() calls.
  uint64_t released = 0;   // Total Release() calls.
  uint64_t reused = 0;     // Allocations served from the freelist.
  uint64_t chunks = 0;     // Chunks ever carved.
};

template <typename T, size_t kChunkCapacity = 64>
class SlabArena {
  static_assert(kChunkCapacity >= 1 && kChunkCapacity <= 64,
                "chunk liveness is tracked in a single 64-bit mask");

 public:
  SlabArena() = default;
  ~SlabArena() {
    for (auto& chunk : chunks_) {
      for (size_t i = 0; i < kChunkCapacity; ++i) {
        if ((chunk->live & (uint64_t{1} << i)) != 0) {
          Slot(*chunk, i)->~T();
        }
      }
    }
  }

  SlabArena(const SlabArena&) = delete;
  SlabArena& operator=(const SlabArena&) = delete;

  // Constructs a value-initialized T in a stable slot (freelist first, then
  // bump allocation in the newest chunk).
  T* Allocate() {
    ++stats_.allocated;
    if (!freelist_.empty()) {
      ++stats_.reused;
      FreeRef ref = freelist_.back();
      freelist_.pop_back();
      Chunk& chunk = *chunks_[ref.chunk];
      chunk.live |= uint64_t{1} << ref.index;
      return new (Slot(chunk, ref.index)) T();
    }
    if (chunks_.empty() || chunks_.back()->used == kChunkCapacity) {
      chunks_.push_back(std::make_unique<Chunk>());
      ++stats_.chunks;
    }
    Chunk& chunk = *chunks_.back();
    const size_t index = chunk.used++;
    chunk.live |= uint64_t{1} << index;
    return new (Slot(chunk, index)) T();
  }

  // Destroys the object and recycles its slot. The pointer must have come
  // from this arena and not already be released.
  void Release(T* p) {
    for (size_t c = chunks_.size(); c-- > 0;) {
      Chunk& chunk = *chunks_[c];
      T* base = Slot(chunk, 0);
      if (p >= base && p < base + kChunkCapacity) {
        const size_t index = static_cast<size_t>(p - base);
        const uint64_t bit = uint64_t{1} << index;
        ELSC_CHECK_MSG((chunk.live & bit) != 0, "SlabArena::Release of a dead slot");
        p->~T();
        chunk.live &= ~bit;
        ++stats_.released;
        freelist_.push_back(FreeRef{c, index});
        return;
      }
    }
    ELSC_CHECK_MSG(false, "SlabArena::Release of a foreign pointer");
  }

  size_t live() const { return stats_.allocated - stats_.released; }
  // Bytes resident in chunk storage (the arena never returns a chunk, so
  // this is also the high-water mark). Bookkeeping vectors are excluded:
  // they are a few pointers per chunk, noise next to the slabs themselves.
  size_t footprint_bytes() const { return chunks_.size() * sizeof(Chunk); }
  const ArenaStats& stats() const { return stats_; }

 private:
  struct Chunk {
    alignas(T) unsigned char storage[sizeof(T) * kChunkCapacity];
    size_t used = 0;     // Bump watermark (slots ever carved from this chunk).
    uint64_t live = 0;   // Bit i set iff slot i currently holds a live T.
  };
  struct FreeRef {
    size_t chunk;
    size_t index;
  };

  static T* Slot(Chunk& chunk, size_t index) {
    return std::launder(reinterpret_cast<T*>(chunk.storage) + index);
  }

  std::vector<std::unique_ptr<Chunk>> chunks_;
  std::vector<FreeRef> freelist_;
  ArenaStats stats_;
};

}  // namespace elsc

#endif  // SRC_BASE_ARENA_H_
