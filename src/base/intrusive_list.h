// Circular doubly-linked intrusive list, mirroring the Linux kernel's
// `struct list_head` idiom.
//
// The schedulers in this library are faithful ports of kernel code that
// manipulates `run_list` nodes directly — including the ELSC trick of setting
// a node's `prev` pointer to null while leaving `next` non-null to mean
// "logically on the run queue but not present in any list" (paper §5.1,
// footnote 3). A typed std-style container cannot express that, so we expose
// the raw kernel operations plus a typed iteration helper for tests.

#ifndef SRC_BASE_INTRUSIVE_LIST_H_
#define SRC_BASE_INTRUSIVE_LIST_H_

#include <cstddef>

#include "src/base/assert.h"

namespace elsc {

struct ListHead {
  ListHead* next = nullptr;
  ListHead* prev = nullptr;
};

// Initializes a head (or detached node) to point at itself, the kernel's
// INIT_LIST_HEAD.
inline void InitListHead(ListHead* head) {
  head->next = head;
  head->prev = head;
}

namespace list_internal {

inline void ListInsert(ListHead* entry, ListHead* before, ListHead* after) {
  after->prev = entry;
  entry->next = after;
  entry->prev = before;
  before->next = entry;
}

}  // namespace list_internal

// Inserts `entry` immediately after `head` (i.e. at the front of the list).
inline void ListAdd(ListHead* entry, ListHead* head) {
  list_internal::ListInsert(entry, head, head->next);
}

// Inserts `entry` immediately before `head` (i.e. at the back of the list).
inline void ListAddTail(ListHead* entry, ListHead* head) {
  list_internal::ListInsert(entry, head->prev, head);
}

// Unlinks `entry` from its list. Like the kernel's __list_del, this does not
// reinitialize the entry's own pointers; callers that care set them
// explicitly (the ELSC scheduler relies on this).
inline void ListDel(ListHead* entry) {
  ELSC_DCHECK(entry->next != nullptr && entry->prev != nullptr);
  entry->next->prev = entry->prev;
  entry->prev->next = entry->next;
}

inline bool ListEmpty(const ListHead* head) { return head->next == head; }

// Moves `entry` to the front of the list rooted at `head`.
inline void ListMove(ListHead* entry, ListHead* head) {
  ListDel(entry);
  ListAdd(entry, head);
}

// Moves `entry` to the back of the list rooted at `head`.
inline void ListMoveTail(ListHead* entry, ListHead* head) {
  ListDel(entry);
  ListAddTail(entry, head);
}

// Number of entries (excluding the head). O(n); used by tests and stats only.
inline size_t ListLength(const ListHead* head) {
  size_t n = 0;
  for (const ListHead* p = head->next; p != head; p = p->next) {
    ++n;
  }
  return n;
}

// container_of: recovers the enclosing object from a pointer to its member.
template <typename T, ListHead T::* Member>
T* ListEntry(ListHead* node) {
  // Offset-of computation via a null-pointer cast is UB; use a real dummy
  // object address computation instead.
  alignas(T) static char probe_storage[sizeof(T)];
  T* probe = reinterpret_cast<T*>(probe_storage);
  auto offset = reinterpret_cast<char*>(&(probe->*Member)) - reinterpret_cast<char*>(probe);
  return reinterpret_cast<T*>(reinterpret_cast<char*>(node) - offset);
}

// Typed iteration helper:
//   for (Task* t : ListRange<Task, &Task::run_list>(&head)) { ... }
// Iteration order is front (head->next) to back. The current entry must not
// be removed during iteration (same contract as list_for_each).
template <typename T, ListHead T::* Member>
class ListRange {
 public:
  explicit ListRange(ListHead* head) : head_(head) {}

  class Iterator {
   public:
    Iterator(ListHead* node, ListHead* head) : node_(node), head_(head) {}
    T* operator*() const { return ListEntry<T, Member>(node_); }
    Iterator& operator++() {
      node_ = node_->next;
      return *this;
    }
    bool operator!=(const Iterator& other) const { return node_ != other.node_; }

   private:
    ListHead* node_;
    ListHead* head_;
  };

  Iterator begin() const { return Iterator(head_->next, head_); }
  Iterator end() const { return Iterator(head_, head_); }

 private:
  ListHead* head_;
};

}  // namespace elsc

#endif  // SRC_BASE_INTRUSIVE_LIST_H_
