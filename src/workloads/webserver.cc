#include "src/workloads/webserver.h"

#include "src/base/assert.h"
#include "src/base/string_util.h"
#include "src/net/socket_ops.h"
#include "src/workloads/micro_behaviors.h"

namespace elsc {

// One prefork worker process.
class WebserverWorker : public TaskBehavior {
 public:
  WebserverWorker(WebserverWorkload* workload, Rng rng) : workload_(workload), rng_(rng) {}

  Segment NextSegment(Machine& machine, Task& task) override {
    const WebserverConfig& cfg = workload_->config();
    SimSocket& accept = *workload_->accept_queue_;
    switch (phase_) {
      case Phase::kAccept: {
        // EINTR idiom: whatever woke us (data, shutdown broadcast, a timed
        // accept expiring, a lifecycle transition, a spurious wake), re-try
        // the read and re-decide.
        ConsumeReadTimeout(task, accept);
        Message req;
        const SockStatus st = accept.TryReadMsg(machine, &req);
        if (st == SockStatus::kReset || st == SockStatus::kEof) {
          // The listener died under us (injected reset or close). A real
          // server re-listens; the first worker to notice reopens and
          // everyone retries the accept.
          if (workload_->window_closed_) {
            return Segment::Exit(cfg.syscall_cycles);
          }
          workload_->ReopenAcceptQueue();
          return Segment::RunAgain(cfg.syscall_cycles);
        }
        if (st == SockStatus::kWouldBlock) {
          if (workload_->window_closed_) {
            return Segment::Exit(cfg.syscall_cycles);
          }
          WebserverWorkload* w = workload_;
          SimSocket* sock = &accept;
          return Segment::BlockFor(
              cfg.syscall_cycles, &accept.read_wait(), accept.rcv_timeout(),
              [w, sock] { return !sock->ReadReady() && !w->window_closed_; });
        }
        if (cfg.shed_deadline > 0 && machine.Now() - req.sent_at > cfg.shed_deadline) {
          // Admission control: this request already waited past its
          // deadline; completing it would be wasted work. Shed and accept
          // the next one.
          workload_->OnRequestShed();
          return Segment::RunAgain(cfg.syscall_cycles);
        }
        request_ = req;
        phase_ = Phase::kParse;
        return Segment::RunAgain(cfg.syscall_cycles);
      }
      case Phase::kParse: {
        const bool disk = rng_.NextBool(cfg.disk_probability);
        phase_ = disk ? Phase::kDisk : Phase::kRespond;
        return Segment::RunAgain(JitterCycles(rng_, cfg.parse_cycles, cfg.work_jitter));
      }
      case Phase::kDisk: {
        phase_ = Phase::kRespond;
        return Segment::Sleep(cfg.syscall_cycles,
                              JitterCycles(rng_, cfg.mean_disk_wait, cfg.work_jitter));
      }
      case Phase::kRespond: {
        const Cycles respond = JitterCycles(rng_, cfg.respond_cycles, cfg.work_jitter);
        const Cycles completion_time = machine.Now() + respond;
        workload_->OnRequestComplete(completion_time - request_.sent_at);
        phase_ = Phase::kAccept;
        return Segment::RunAgain(respond);
      }
    }
    __builtin_unreachable();
  }

 private:
  enum class Phase { kAccept, kParse, kDisk, kRespond };
  WebserverWorkload* workload_;
  Rng rng_;
  Message request_;
  Phase phase_ = Phase::kAccept;
};

WebserverWorkload::WebserverWorkload(Machine& machine, const WebserverConfig& config)
    : machine_(machine), config_(config), rng_(machine.rng().Fork()) {
  ELSC_CHECK(config_.workers >= 1);
  ELSC_CHECK(config_.arrival_rate_per_sec > 0.0);
}

WebserverWorkload::~WebserverWorkload() = default;

void WebserverWorkload::Setup() {
  accept_queue_ = std::make_unique<SimSocket>("httpd.accept", config_.accept_queue_capacity);
  accept_queue_->set_rcv_timeout(config_.accept_timeout);
  for (int i = 0; i < config_.workers; ++i) {
    auto worker = std::make_unique<WebserverWorker>(this, rng_.Fork());
    TaskParams params;
    params.name = StrFormat("httpd-%d", i);
    // Prefork: each worker is a separate process with its own mm
    // (TaskParams.mm == nullptr allocates a fresh one).
    params.behavior = worker.get();
    machine_.CreateTask(params);
    behaviors_.push_back(std::move(worker));
  }

  window_end_ = machine_.Now() + config_.duration;
  machine_.engine().ScheduleAt(window_end_, [this] {
    window_closed_ = true;
    // Release any workers parked on an empty accept queue so they can exit.
    accept_queue_->read_wait().WakeAll(machine_);
  });
  ScheduleNextArrival();
}

void WebserverWorkload::ScheduleNextArrival() {
  const double mean_gap_sec = 1.0 / config_.arrival_rate_per_sec;
  const double gap_sec = rng_.NextExponential(mean_gap_sec);
  const auto gap = static_cast<Cycles>(gap_sec * static_cast<double>(kCyclesPerSec)) + 1;
  machine_.engine().ScheduleAfter(gap, [this] {
    if (machine_.Now() >= window_end_) {
      return;
    }
    ++arrived_;
    Message request;
    request.id = arrived_;
    request.sent_at = machine_.Now();
    SubmitRequest(request, 0);
    ScheduleNextArrival();
  });
}

void WebserverWorkload::SubmitRequest(const Message& request, int attempt) {
  if (attempt > 0 && window_closed_) {
    // The measurement window closed while this retry timer was pending; the
    // workers may already have drained out, so enqueueing now could strand
    // the request forever. The client gives up instead.
    ++abandons_;
    ++dropped_backlog_;
    return;
  }
  const SockStatus st = accept_queue_->TryWriteMsg(machine_, request);
  if (st == SockStatus::kOk) {
    return;
  }
  const bool conn_dead = st != SockStatus::kWouldBlock;
  if (config_.retry_arrivals && !window_closed_) {
    const int next_attempt = attempt + 1;
    if (!config_.backoff.ShouldAbandon(next_attempt)) {
      ++retries_;
      ++pending_retries_;
      // Jitter key = request id: unique per request, so retry timers spread
      // out deterministically without consuming any shared RNG stream.
      const Cycles delay = config_.backoff.Delay(request.id, next_attempt);
      machine_.engine().ScheduleAfter(delay, [this, request, next_attempt] {
        --pending_retries_;
        SubmitRequest(request, next_attempt);
      });
      return;
    }
    ++abandons_;
  }
  if (conn_dead) {
    ++dropped_conn_;
  } else {
    ++dropped_backlog_;
  }
}

void WebserverWorkload::OnRequestComplete(Cycles latency) {
  ++completed_;
  latency_us_.Add(static_cast<uint64_t>(CyclesToUs(latency)));
}

void WebserverWorkload::OnRequestShed() { ++dropped_shed_; }

void WebserverWorkload::ReopenAcceptQueue() {
  // Reopen() counts any torn-down queue remnants into stats().discarded,
  // which Result() folds into dropped_reset — so requests destroyed by the
  // teardown stay accounted for.
  accept_queue_->Reopen(machine_);
}

bool WebserverWorkload::Done() const {
  return window_closed_ && machine_.live_tasks() == 0 && pending_retries_ == 0;
}

WebserverResult WebserverWorkload::Result() const {
  WebserverResult result;
  result.requests_arrived = arrived_;
  result.requests_completed = completed_;
  result.dropped_backlog = dropped_backlog_;
  result.dropped_shed = dropped_shed_;
  // Reset drops: writes refused by a dead listener, plus queued requests
  // destroyed when the listener was torn down.
  result.dropped_reset = dropped_conn_ + accept_queue_->stats().discarded;
  result.requests_dropped =
      result.dropped_backlog + result.dropped_shed + result.dropped_reset;
  result.retries = retries_;
  result.abandons = abandons_;
  result.elapsed_sec = CyclesToSec(machine_.Now());
  result.throughput =
      result.elapsed_sec > 0 ? static_cast<double>(completed_) / result.elapsed_sec : 0.0;
  result.latency_mean_us = latency_us_.mean();
  result.latency_p50_us = latency_us_.Percentile(0.50);
  result.latency_p95_us = latency_us_.Percentile(0.95);
  result.latency_p99_us = latency_us_.Percentile(0.99);
  result.latency_p999_us = latency_us_.Percentile(0.999);
  return result;
}

std::string RenderWebserverReport(const WebserverResult& r) {
  std::string out;
  out += StrFormat("requests_arrived:     %llu\n", (unsigned long long)r.requests_arrived);
  out += StrFormat("requests_completed:   %llu\n", (unsigned long long)r.requests_completed);
  out += StrFormat("requests_dropped:     %llu\n", (unsigned long long)r.requests_dropped);
  if (r.requests_dropped > 0) {
    out += StrFormat("dropped_backlog:      %llu\n", (unsigned long long)r.dropped_backlog);
    out += StrFormat("dropped_shed:         %llu\n", (unsigned long long)r.dropped_shed);
    out += StrFormat("dropped_reset:        %llu\n", (unsigned long long)r.dropped_reset);
  }
  if (r.retries > 0 || r.abandons > 0) {
    out += StrFormat("retries:              %llu\n", (unsigned long long)r.retries);
    out += StrFormat("abandons:             %llu\n", (unsigned long long)r.abandons);
  }
  out += StrFormat("elapsed_sec:          %.3f\n", r.elapsed_sec);
  out += StrFormat("throughput_rps:       %.1f\n", r.throughput);
  out += StrFormat("latency_mean_us:      %.1f\n", r.latency_mean_us);
  out += StrFormat("latency_p50_us:       %llu\n", (unsigned long long)r.latency_p50_us);
  out += StrFormat("latency_p95_us:       %llu\n", (unsigned long long)r.latency_p95_us);
  out += StrFormat("latency_p99_us:       %llu\n", (unsigned long long)r.latency_p99_us);
  out += StrFormat("latency_p999_us:      %llu\n", (unsigned long long)r.latency_p999_us);
  return out;
}

}  // namespace elsc
