#include "src/workloads/webserver.h"

#include "src/base/assert.h"
#include "src/base/string_util.h"
#include "src/net/socket_ops.h"
#include "src/workloads/micro_behaviors.h"

namespace elsc {

// One prefork worker process.
class WebserverWorker : public TaskBehavior {
 public:
  WebserverWorker(WebserverWorkload* workload, Rng rng) : workload_(workload), rng_(rng) {}

  Segment NextSegment(Machine& machine, Task& task) override {
    const WebserverConfig& cfg = workload_->config();
    SimSocket& accept = *workload_->accept_queue_;
    switch (phase_) {
      case Phase::kAccept: {
        // EINTR idiom: whatever woke us (data, shutdown broadcast, a timed
        // accept expiring, a spurious wake), re-try the read and re-decide.
        ConsumeReadTimeout(task, accept);
        auto req = accept.TryRead(machine);
        if (!req.has_value()) {
          if (workload_->window_closed_) {
            return Segment::Exit(cfg.syscall_cycles);
          }
          WebserverWorkload* w = workload_;
          SimSocket* sock = &accept;
          return Segment::BlockFor(
              cfg.syscall_cycles, &accept.read_wait(), accept.rcv_timeout(),
              [w, sock] { return !sock->CanRead() && !w->window_closed_; });
        }
        request_ = *req;
        phase_ = Phase::kParse;
        return Segment::RunAgain(cfg.syscall_cycles);
      }
      case Phase::kParse: {
        const bool disk = rng_.NextBool(cfg.disk_probability);
        phase_ = disk ? Phase::kDisk : Phase::kRespond;
        return Segment::RunAgain(JitterCycles(rng_, cfg.parse_cycles, cfg.work_jitter));
      }
      case Phase::kDisk: {
        phase_ = Phase::kRespond;
        return Segment::Sleep(cfg.syscall_cycles,
                              JitterCycles(rng_, cfg.mean_disk_wait, cfg.work_jitter));
      }
      case Phase::kRespond: {
        const Cycles respond = JitterCycles(rng_, cfg.respond_cycles, cfg.work_jitter);
        const Cycles completion_time = machine.Now() + respond;
        workload_->OnRequestComplete(completion_time - request_.sent_at);
        phase_ = Phase::kAccept;
        return Segment::RunAgain(respond);
      }
    }
    __builtin_unreachable();
  }

 private:
  enum class Phase { kAccept, kParse, kDisk, kRespond };
  WebserverWorkload* workload_;
  Rng rng_;
  Message request_;
  Phase phase_ = Phase::kAccept;
};

WebserverWorkload::WebserverWorkload(Machine& machine, const WebserverConfig& config)
    : machine_(machine), config_(config), rng_(machine.rng().Fork()) {
  ELSC_CHECK(config_.workers >= 1);
  ELSC_CHECK(config_.arrival_rate_per_sec > 0.0);
}

WebserverWorkload::~WebserverWorkload() = default;

void WebserverWorkload::Setup() {
  accept_queue_ = std::make_unique<SimSocket>("httpd.accept", config_.accept_queue_capacity);
  accept_queue_->set_rcv_timeout(config_.accept_timeout);
  for (int i = 0; i < config_.workers; ++i) {
    auto worker = std::make_unique<WebserverWorker>(this, rng_.Fork());
    TaskParams params;
    params.name = StrFormat("httpd-%d", i);
    // Prefork: each worker is a separate process with its own mm
    // (TaskParams.mm == nullptr allocates a fresh one).
    params.behavior = worker.get();
    machine_.CreateTask(params);
    behaviors_.push_back(std::move(worker));
  }

  window_end_ = machine_.Now() + config_.duration;
  machine_.engine().ScheduleAt(window_end_, [this] {
    window_closed_ = true;
    // Release any workers parked on an empty accept queue so they can exit.
    accept_queue_->read_wait().WakeAll(machine_);
  });
  ScheduleNextArrival();
}

void WebserverWorkload::ScheduleNextArrival() {
  const double mean_gap_sec = 1.0 / config_.arrival_rate_per_sec;
  const double gap_sec = rng_.NextExponential(mean_gap_sec);
  const auto gap = static_cast<Cycles>(gap_sec * static_cast<double>(kCyclesPerSec)) + 1;
  machine_.engine().ScheduleAfter(gap, [this] {
    if (machine_.Now() >= window_end_) {
      return;
    }
    ++arrived_;
    Message request;
    request.id = arrived_;
    request.sent_at = machine_.Now();
    if (!accept_queue_->TryWrite(machine_, request)) {
      ++dropped_;
    }
    ScheduleNextArrival();
  });
}

void WebserverWorkload::OnRequestComplete(Cycles latency) {
  ++completed_;
  latency_us_.Add(static_cast<uint64_t>(CyclesToUs(latency)));
}

bool WebserverWorkload::Done() const { return window_closed_ && machine_.live_tasks() == 0; }

WebserverResult WebserverWorkload::Result() const {
  WebserverResult result;
  result.requests_arrived = arrived_;
  result.requests_completed = completed_;
  result.requests_dropped = dropped_;
  result.elapsed_sec = CyclesToSec(machine_.Now());
  result.throughput =
      result.elapsed_sec > 0 ? static_cast<double>(completed_) / result.elapsed_sec : 0.0;
  result.latency_mean_us = latency_us_.mean();
  result.latency_p50_us = latency_us_.Percentile(0.50);
  result.latency_p95_us = latency_us_.Percentile(0.95);
  result.latency_p99_us = latency_us_.Percentile(0.99);
  return result;
}

}  // namespace elsc
