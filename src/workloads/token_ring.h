// Token-ring context-switch workload (LMbench lat_ctx style).
//
// N tasks arranged in a ring of pipes; each task blocks reading its inbound
// pipe, does a tiny unit of work when the token arrives, and writes the
// token to the next task. With K tokens circulating concurrently, the
// runnable population hovers around K — so sweeping K isolates how each
// scheduler's pick cost scales with run-queue depth, with none of
// VolanoMark's broadcast/locking structure in the way. This was the classic
// microbenchmark used to evaluate scheduler patches in the paper's era.

#ifndef SRC_WORKLOADS_TOKEN_RING_H_
#define SRC_WORKLOADS_TOKEN_RING_H_

#include <cstdint>
#include <memory>
#include <vector>

#include "src/net/socket.h"
#include "src/smp/machine.h"

namespace elsc {

struct TokenRingConfig {
  int tasks = 64;          // Ring size.
  int tokens = 1;          // Concurrent tokens (≈ runnable depth).
  uint64_t total_hops = 100000;  // Experiment length, summed over tokens.
  Cycles hop_work = UsToCycles(10);   // Work per token visit.
  Cycles syscall_cycles = UsToCycles(3);
  // Optional pipe-read deadline (SO_RCVTIMEO analog): a ring task whose
  // token never arrives wakes after this many cycles instead of wedging the
  // run forever. 0 (default) blocks forever — the historical behavior.
  Cycles read_timeout = 0;
};

struct TokenRingResult {
  bool completed = false;
  uint64_t hops = 0;
  double elapsed_sec = 0.0;
  double hops_per_sec = 0.0;
  // Mean wall latency of one hop (write in task i to completion of work in
  // task i+1), dominated by wake + schedule + dispatch.
  double hop_latency_us = 0.0;
};

class TokenRingWorkload {
 public:
  TokenRingWorkload(Machine& machine, const TokenRingConfig& config);
  ~TokenRingWorkload();

  TokenRingWorkload(const TokenRingWorkload&) = delete;
  TokenRingWorkload& operator=(const TokenRingWorkload&) = delete;

  void Setup();
  bool Done() const;
  TokenRingResult Result() const;

  const TokenRingConfig& config() const { return config_; }

 private:
  friend class TokenRingBehavior;

  SimSocket& pipe(int index) { return *pipes_[static_cast<size_t>(index)]; }
  // Called on each token arrival with the hop's wall latency; returns false
  // once the hop budget is exhausted (the token is then retired).
  bool CountHopWithLatency(Cycles latency);

  Machine& machine_;
  TokenRingConfig config_;
  std::vector<std::unique_ptr<SimSocket>> pipes_;
  std::vector<std::unique_ptr<TaskBehavior>> behaviors_;
  uint64_t hops_done_ = 0;
  uint64_t tokens_retired_ = 0;
  Cycles latency_sum_ = 0;
};

}  // namespace elsc

#endif  // SRC_WORKLOADS_TOKEN_RING_H_
