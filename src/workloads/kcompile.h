// Kernel-compile simulation ("make -j4 bzImage", paper §6, Table 2).
//
// The paper's light-load test: a parallel build with at most `jobs`
// concurrent compiler processes. Modeled as
//   * a make master task: serial parse phase, then it releases the worker
//     pool, sleeps until all compile jobs finish, then runs the serial link
//     phase and exits;
//   * `jobs` pool-slot tasks, each repeatedly pulling the next compile job
//     and fork()ing a cc child process for it (real task churn: the child
//     inherits half the slot's quantum, runs the job — blocking source-read
//     I/O, the compile CPU burst, a blocking object-write — and exits while
//     the slot waits, exactly like make's job slots).
//
// Total CPU work is calibrated to the paper's testbed (≈370 s parallel +
// ≈30 s serial gives 6:41 on one CPU and ≈3:40 on two). The experiment's
// point is that the run queue stays tiny (≤ jobs+1 runnable), so both
// schedulers should perform equivalently.

#ifndef SRC_WORKLOADS_KCOMPILE_H_
#define SRC_WORKLOADS_KCOMPILE_H_

#include <cstdint>
#include <memory>
#include <vector>

#include "src/base/rng.h"
#include "src/net/socket.h"
#include "src/smp/machine.h"

namespace elsc {

struct KcompileConfig {
  int jobs = 4;                   // make -j4.
  int total_compile_jobs = 2000;  // Translation units.
  // Parallel CPU work: per-job compile burst (jittered).
  Cycles mean_compile_cycles = MsToCycles(185);
  double compile_jitter = 0.6;
  // Per-job overheads.
  Cycles exec_overhead_cycles = UsToCycles(300);  // fork/exec of cc.
  Cycles io_cpu_cycles = UsToCycles(50);          // Syscall CPU for each I/O.
  Cycles mean_read_wait = MsToCycles(2);          // Blocking source read.
  Cycles mean_write_wait = MsToCycles(1);         // Blocking object write.
  // Serial phases of make itself.
  Cycles serial_parse_cycles = SecToCycles(12);
  Cycles serial_link_cycles = SecToCycles(18);
};

struct KcompileResult {
  bool completed = false;
  double elapsed_sec = 0.0;    // The Table 2 number.
  uint64_t jobs_compiled = 0;
};

class KcompileWorkload {
 public:
  KcompileWorkload(Machine& machine, const KcompileConfig& config);
  ~KcompileWorkload();

  KcompileWorkload(const KcompileWorkload&) = delete;
  KcompileWorkload& operator=(const KcompileWorkload&) = delete;

  void Setup();
  bool Done() const;
  KcompileResult Result() const;

  const KcompileConfig& config() const { return config_; }

 private:
  friend class KcompileMaster;
  friend class KcompileWorker;
  friend class KcompileJob;

  // Job distribution: returns the next job's compile burst, or 0 when the
  // job list is exhausted.
  Cycles TakeJob();
  void OnJobDone(Machine& machine, int worker_slot);
  // Registers a dynamically created behavior so it outlives its task.
  TaskBehavior* Adopt(std::unique_ptr<TaskBehavior> behavior);

  Machine& machine_;
  KcompileConfig config_;
  Rng rng_;
  MmStruct* make_mm_ = nullptr;
  std::vector<std::unique_ptr<TaskBehavior>> behaviors_;
  std::unique_ptr<SimSocket> start_gate_;   // Master releases workers.
  std::unique_ptr<SimSocket> done_signal_;  // Last worker signals master.
  std::vector<std::unique_ptr<SimSocket>> slot_done_;  // Per-slot child-exit signal.
  int jobs_taken_ = 0;
  int jobs_done_ = 0;
  bool build_finished_ = false;
  double finish_time_sec_ = 0.0;
};

}  // namespace elsc

#endif  // SRC_WORKLOADS_KCOMPILE_H_
