// VolanoMark simulation (paper §4, §6).
//
// VolanoMark benchmarks VolanoChat, a Java chat server: R rooms of 20 users
// each, every user sending 100 messages that the server broadcasts to the
// whole room. Java (1.1) lacks non-blocking I/O, so every socket direction
// gets its own thread — 4 threads per connection, 80 threads per room. Run
// in loopback mode, clients and server share one machine and all traffic is
// scheduler-bound.
//
// This model reproduces the scheduler-relevant structure:
//  * per user u: a client→server socket, a server→client socket, a server-
//    side per-connection output queue, and four threads —
//      client writer  : composes a message, writes c2s, waits until its own
//                       message comes back (closed loop), repeats ×100;
//      client reader  : drains s2c, processing each broadcast delivery;
//      server reader  : reads c2s, parses, fans the message out to every
//                       room member's output queue;
//      server writer  : moves messages from the output queue onto s2c.
//  * all server threads share one mm (the server JVM), all client threads
//    another (the client JVM) — matching loopback mode's two processes.
//  * 2001-era JVM locking is emulated by occasional sched_yield spins before
//    processing steps (the source of the stock scheduler's recalculation
//    storms, paper Figure 2).
//
// Throughput is reported as broadcast deliveries per simulated second.

#ifndef SRC_WORKLOADS_VOLANO_H_
#define SRC_WORKLOADS_VOLANO_H_

#include <cstdint>
#include <memory>
#include <vector>

#include "src/base/rng.h"
#include "src/net/backoff.h"
#include "src/net/socket.h"
#include "src/smp/machine.h"

namespace elsc {

struct VolanoConfig {
  int rooms = 10;
  int users_per_room = 20;
  int messages_per_user = 100;

  // JVM user-level lock emulation: probability a thread spins through
  // sched_yield before a processing step, and the spin count bound.
  double yield_probability = 0.15;
  int max_yield_spin = 2;
  Cycles yield_spin_cycles = UsToCycles(2);
  // Blocking socket I/O parks in the kernel immediately (Java 1.1 blocking
  // reads/writes); a nonzero value adds courtesy sched_yield spins first.
  int spin_yields_before_block = 0;
  // Room-monitor emulation: VolanoChat serializes each room's broadcast on a
  // Java monitor, and 2001-era LinuxThreads/JVM monitors resolved contention
  // by spinning through sched_yield — futex-style parking did not exist.
  // Contenders therefore yield-spin (up to this safety cap, then park). When
  // the lock holder blocks mid-broadcast on a full connection queue and a
  // single contender spins alone, every yield sends the stock scheduler
  // through the whole-system counter recalculation at ~10 us intervals —
  // the paper's Figure 2 storm.
  int lock_spin_yields = 30;
  Cycles lock_acquire_cycles = UsToCycles(2);
  // Connection establishment (the benchmark's ramp phase): the client's
  // main thread opens every connection sequentially and yield-polls the
  // handshake; the server's listener accepts, spawns the per-connection
  // threads, and acknowledges. During the ramp the connector is usually the
  // only runnable task, so each of its yields drives the stock scheduler
  // through the whole-system recalculation loop — the dominant contribution
  // to the paper's Figure 2 counts. Chat threads wait on a start barrier
  // until every connection is up (VolanoMark measures from that point).
  Cycles accept_work_cycles = UsToCycles(300);
  Cycles accept_latency_mean = MsToCycles(2);
  int connect_spin_yields = 40;
  // VolanoMark's client threads call Thread.yield() while spinning on the
  // round-trip of their own message before parking. The writer awaiting its
  // broadcast echo is very often the only runnable task at that instant, so
  // each of these yields drives the stock scheduler through the recalculate
  // loop (Figure 2) while ELSC simply re-runs the yielder.
  int ack_spin_yields = 2;

  // CPU costs per operation (jittered by work_jitter), calibrated so a full
  // delivery chain costs ~200 us of 400 MHz CPU — VolanoMark-era loopback
  // throughput territory.
  Cycles compose_cycles = UsToCycles(180);
  Cycles client_process_cycles = UsToCycles(100);
  Cycles server_parse_cycles = UsToCycles(120);
  Cycles broadcast_enqueue_cycles = UsToCycles(15);  // Per room member.
  Cycles server_write_cycles = UsToCycles(80);
  Cycles syscall_cycles = UsToCycles(10);
  double work_jitter = 0.25;

  size_t socket_capacity = 2;   // c2s / s2c wire sockets (small 2001 buffers).
  size_t outqueue_capacity = 4;  // Server-side per-connection output queue.

  // -- Churn mode (overload resilience) --
  //
  // When true, clients tolerate connection churn: wire resets and lost
  // round-trips are retried with bounded exponential backoff + deterministic
  // jitter (reconnecting both wires), and a client that exhausts its retries
  // abandons the connection. Termination switches from exact message counts
  // (which loss would deadlock) to connection teardown: each finished client
  // closes its wires, threads drain to EOF and exit. Default off — the
  // closed-loop protocol and its golden digests are bit-identical.
  bool churn = false;
  // Round-trip deadline on the client's pacing ack (SO_RCVTIMEO analog):
  // a broadcast that fails to echo within this window is presumed lost and
  // the client reconnects + retransmits. Only applied when churn is on.
  Cycles ack_timeout = MsToCycles(40);
  // Reconnect/retransmit backoff (jitter keyed per user, so a mass reset's
  // victims spread their reconnects instead of stampeding).
  BackoffPolicy backoff;

  int threads_per_connection() const { return 4; }
  int total_threads() const { return rooms * users_per_room * threads_per_connection(); }
  uint64_t expected_deliveries() const {
    return static_cast<uint64_t>(rooms) * users_per_room * users_per_room *
           static_cast<uint64_t>(messages_per_user);
  }
};

struct VolanoResult {
  bool completed = false;
  double elapsed_sec = 0.0;
  uint64_t messages_sent = 0;
  uint64_t messages_delivered = 0;
  double throughput = 0.0;  // Deliveries per simulated second.
  // Churn-mode resilience counters (all zero in the classic closed loop).
  uint64_t resets_seen = 0;      // Wire ResetByPeer() transitions suffered.
  uint64_t retries = 0;          // Failed round-trips retried by clients.
  uint64_t reconnects = 0;       // Wire re-establishments (Reopen pairs).
  uint64_t abandons = 0;         // Clients that gave up after max retries.
  uint64_t messages_lost = 0;    // Deliveries destroyed by resets/teardown.
};

class VolanoWorkload {
 public:
  VolanoWorkload(Machine& machine, const VolanoConfig& config);
  ~VolanoWorkload();

  VolanoWorkload(const VolanoWorkload&) = delete;
  VolanoWorkload& operator=(const VolanoWorkload&) = delete;

  // Creates all sockets, queues, and tasks. Call before Machine::Start().
  void Setup();

  // True once every message has been delivered and every thread has exited.
  bool Done() const;

  VolanoResult Result() const;

  uint64_t messages_sent() const { return messages_sent_; }
  uint64_t messages_delivered() const { return messages_delivered_; }
  const VolanoConfig& config() const { return config_; }

  // Per-room delivery progress, for embedders that must account work at
  // room granularity — the sharded runner's crash/restart path banks the
  // finished rooms of a dead node and re-runs only the unfinished ones.
  uint64_t RoomDelivered(int room) const {
    return room_delivered_[static_cast<size_t>(room)];
  }
  bool RoomComplete(int room) const {
    return RoomDelivered(room) == static_cast<uint64_t>(config_.users_per_room) *
                                      config_.users_per_room *
                                      config_.messages_per_user;
  }
  int CompletedRooms() const {
    int done = 0;
    for (int r = 0; r < config_.rooms; ++r) {
      done += RoomComplete(r) ? 1 : 0;
    }
    return done;
  }

  // True once the chat protocol itself has finished (all deliveries in the
  // classic closed loop; every writer done in churn mode) even if threads
  // are still draining to exit. The sharded runner (src/api/scale.h) keys
  // its federation shutdown off this.
  bool ChatComplete() const {
    if (config_.churn) {
      return done_writers_ ==
             static_cast<uint64_t>(config_.rooms) * config_.users_per_room;
    }
    return messages_delivered_ == config_.expected_deliveries();
  }

  // Sockets this workload owns (4 per connection + the accept queue); feeds
  // the memory high-water block of RunStats.
  uint64_t SocketCount() const {
    return static_cast<uint64_t>(connections_.size()) * 4 + (accept_queue_ ? 1 : 0);
  }

  // The server JVM's mm, exposed so embedders (the sharded runner's
  // federation relays) can co-locate extra server-side threads.
  MmStruct* server_mm() { return server_mm_; }

  // Ramp-phase state, exposed for the thread behaviors.
  bool chat_started() const { return chat_started_; }
  WaitQueue* start_barrier() { return start_barrier_.get(); }

  // Sockets the connection-lifecycle fault injectors may victimize: the c2s
  // and s2c wires of every connection (the queues behind them — outq, ack —
  // are server/client internals, not network). See
  // FaultInjector::AttachLifecycleTargets.
  std::vector<SimSocket*> LifecycleTargets();

 private:
  friend class VolanoClientWriter;
  friend class VolanoClientReader;
  friend class VolanoServerReader;
  friend class VolanoServerWriter;
  friend class VolanoConnector;
  friend class VolanoListener;

  struct RoomState {
    bool lock_held = false;
    std::unique_ptr<WaitQueue> lock_wait;
    uint64_t contended_acquires = 0;
  };

  struct Connection {
    int user = 0;  // Global user index.
    int room = 0;
    std::unique_ptr<SimSocket> c2s;   // Client -> server wire.
    std::unique_ptr<SimSocket> s2c;   // Server -> client wire.
    std::unique_ptr<SimSocket> outq;  // Server-side broadcast output queue.
    std::unique_ptr<SimSocket> ack;   // Client pacing: own-broadcast-seen tokens.
  };

  Connection& connection(int user) { return *connections_[static_cast<size_t>(user)]; }
  RoomState& room_state(int room) { return *rooms_[static_cast<size_t>(room)]; }
  // Global user index of member m of room r.
  int UserIndex(int room, int member) const { return room * config_.users_per_room + member; }

  // Dynamic thread creation during the ramp (listener/connector spawn the
  // per-connection threads, exactly as the real client and server do).
  void SpawnServerThreads(int user);
  void SpawnClientThreads(int user);

  // Churn-mode teardown: a finished writer closes its c2s (plus the whole
  // connection when it abandoned); once every writer is done the chat shuts
  // down and the remaining threads drain to EOF.
  void OnWriterDone(int user, bool abandoned);
  void ShutdownChat();

  Machine& machine_;
  VolanoConfig config_;
  Rng rng_;
  MmStruct* server_mm_ = nullptr;
  MmStruct* client_mm_ = nullptr;
  std::vector<std::unique_ptr<Connection>> connections_;
  std::vector<std::unique_ptr<RoomState>> rooms_;
  std::vector<std::unique_ptr<TaskBehavior>> behaviors_;
  std::unique_ptr<SimSocket> accept_queue_;
  std::unique_ptr<WaitQueue> start_barrier_;
  bool chat_started_ = false;
  uint64_t messages_sent_ = 0;
  uint64_t messages_delivered_ = 0;
  std::vector<uint64_t> room_delivered_;  // Deliveries landed, per room.
  uint64_t next_message_id_ = 1;
  // Churn-mode progress and resilience counters.
  uint64_t done_writers_ = 0;
  uint64_t retries_ = 0;
  uint64_t reconnects_ = 0;
  uint64_t abandons_ = 0;
  uint64_t messages_lost_ = 0;
};

}  // namespace elsc

#endif  // SRC_WORKLOADS_VOLANO_H_
