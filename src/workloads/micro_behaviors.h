// Elementary task behaviors used by unit tests, examples, and synthetic
// stress benchmarks: pure spinners, yield-loopers, and interactive
// burst-sleep tasks.

#ifndef SRC_WORKLOADS_MICRO_BEHAVIORS_H_
#define SRC_WORKLOADS_MICRO_BEHAVIORS_H_

#include <cstdint>

#include "src/base/rng.h"
#include "src/base/time_units.h"
#include "src/kernel/behavior.h"

namespace elsc {

// Pure CPU hog. Runs bursts forever, or exits after `total_work` cycles of
// useful work when total_work > 0.
class SpinnerBehavior : public TaskBehavior {
 public:
  explicit SpinnerBehavior(Cycles burst = MsToCycles(5), Cycles total_work = 0)
      : burst_(burst), remaining_(total_work), finite_(total_work > 0) {}

  Segment NextSegment(Machine& machine, Task& task) override;

  Cycles work_done() const { return work_done_; }

 private:
  Cycles burst_;
  Cycles remaining_;
  bool finite_;
  Cycles work_done_ = 0;
};

// Burst then sched_yield(), `iterations` times; then exits. Models the
// user-level spin locks (sched_yield back-off) of 2001-era JVMs.
class YielderBehavior : public TaskBehavior {
 public:
  YielderBehavior(Cycles burst, uint64_t iterations) : burst_(burst), remaining_(iterations) {}

  Segment NextSegment(Machine& machine, Task& task) override;

  uint64_t yields_done() const { return yields_done_; }

 private:
  Cycles burst_;
  uint64_t remaining_;
  uint64_t yields_done_ = 0;
};

// Interactive: CPU burst, then sleep for a fixed duration, repeated
// `iterations` times (0 = forever).
class InteractiveBehavior : public TaskBehavior {
 public:
  InteractiveBehavior(Cycles burst, Cycles sleep, uint64_t iterations = 0)
      : burst_(burst), sleep_(sleep), remaining_(iterations), finite_(iterations > 0) {}

  Segment NextSegment(Machine& machine, Task& task) override;

  uint64_t wakeups() const { return iterations_done_; }

 private:
  Cycles burst_;
  Cycles sleep_;
  uint64_t remaining_;
  bool finite_;
  uint64_t iterations_done_ = 0;
};

// Runs exactly `work` cycles (in `burst`-sized pieces) and exits. Useful for
// completion-time tests.
class FixedWorkBehavior : public TaskBehavior {
 public:
  explicit FixedWorkBehavior(Cycles work, Cycles burst = MsToCycles(2))
      : remaining_(work), burst_(burst) {}

  Segment NextSegment(Machine& machine, Task& task) override;

  bool finished() const { return finished_; }

 private:
  Cycles remaining_;
  Cycles burst_;
  bool finished_ = false;
};

// Blocks forever on a wait queue after an optional initial burst; exits when
// woken `wakes_before_exit` times. Drives wait-queue and wake-path tests.
class WaiterBehavior : public TaskBehavior {
 public:
  WaiterBehavior(WaitQueue* queue, uint64_t wakes_before_exit = 1, Cycles burst = UsToCycles(10))
      : queue_(queue), remaining_wakes_(wakes_before_exit), burst_(burst) {}

  Segment NextSegment(Machine& machine, Task& task) override;

  uint64_t times_woken() const { return times_woken_; }

 private:
  WaitQueue* queue_;
  uint64_t remaining_wakes_;
  Cycles burst_;
  uint64_t times_woken_ = 0;
  bool started_ = false;
};

// Applies uniform jitter of +/- `fraction` to `base` using `rng`.
Cycles JitterCycles(Rng& rng, Cycles base, double fraction);

}  // namespace elsc

#endif  // SRC_WORKLOADS_MICRO_BEHAVIORS_H_
