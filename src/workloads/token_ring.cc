#include "src/workloads/token_ring.h"

#include "src/base/assert.h"
#include "src/base/string_util.h"
#include "src/net/socket_ops.h"

namespace elsc {

namespace {
// Latency accounting lives in the workload; tokens carry their send time.
}  // namespace

class TokenRingBehavior : public TaskBehavior {
 public:
  TokenRingBehavior(TokenRingWorkload* workload, int index) : workload_(workload), index_(index) {}

  Segment NextSegment(Machine& machine, Task& task) override {
    const TokenRingConfig& cfg = workload_->config();
    switch (phase_) {
      case Phase::kRead: {
        // EINTR retry loop: count an expired read deadline, then re-try the
        // read and block again — a late token still completes the run.
        ConsumeReadTimeout(task, workload_->pipe(index_));
        auto token = workload_->pipe(index_).TryRead(machine);
        if (!token.has_value()) {
          return BlockUntilReadable(cfg.syscall_cycles, workload_->pipe(index_));
        }
        forward_ = workload_->CountHopWithLatency(machine.Now() - token->sent_at);
        phase_ = Phase::kForward;
        return Segment::RunAgain(cfg.hop_work);
      }
      case Phase::kForward: {
        if (forward_) {
          const int next = (index_ + 1) % cfg.tasks;
          Message token;
          token.sender = index_;
          token.sent_at = machine.Now();
          const bool ok = workload_->pipe(next).TryWrite(machine, token);
          ELSC_CHECK_MSG(ok, "token ring pipe overflow");
        }
        phase_ = Phase::kRead;
        return Segment::RunAgain(cfg.syscall_cycles);
      }
    }
    __builtin_unreachable();
  }

 private:
  enum class Phase { kRead, kForward };
  TokenRingWorkload* workload_;
  int index_;
  bool forward_ = true;
  Phase phase_ = Phase::kRead;
};

TokenRingWorkload::TokenRingWorkload(Machine& machine, const TokenRingConfig& config)
    : machine_(machine), config_(config) {
  ELSC_CHECK(config_.tasks >= 2);
  ELSC_CHECK(config_.tokens >= 1 && config_.tokens <= config_.tasks);
  ELSC_CHECK(config_.total_hops >= static_cast<uint64_t>(config_.tokens));
}

TokenRingWorkload::~TokenRingWorkload() = default;

void TokenRingWorkload::Setup() {
  MmStruct* mm = machine_.CreateMm();  // One process, N threads, like lat_ctx -P.
  pipes_.reserve(static_cast<size_t>(config_.tasks));
  for (int i = 0; i < config_.tasks; ++i) {
    pipes_.push_back(std::make_unique<SimSocket>(StrFormat("ring.pipe%d", i),
                                                 static_cast<size_t>(config_.tokens) + 2));
    pipes_.back()->set_rcv_timeout(config_.read_timeout);
  }
  for (int i = 0; i < config_.tasks; ++i) {
    behaviors_.push_back(std::make_unique<TokenRingBehavior>(this, i));
    TaskParams params;
    params.name = StrFormat("ring-%d", i);
    params.mm = mm;
    params.behavior = behaviors_.back().get();
    machine_.CreateTask(params);
  }
  // Inject the tokens, spread around the ring.
  for (int t = 0; t < config_.tokens; ++t) {
    const int slot = static_cast<int>(static_cast<long>(t) * config_.tasks / config_.tokens);
    Message token;
    token.sender = -1;
    token.sent_at = machine_.Now();
    const bool ok = pipe(slot).TryWrite(machine_, token);
    ELSC_CHECK(ok);
  }
}

bool TokenRingWorkload::CountHopWithLatency(Cycles latency) {
  ++hops_done_;
  latency_sum_ += latency;
  if (hops_done_ >= config_.total_hops + static_cast<uint64_t>(tokens_retired_)) {
    // Budget reached: retire this token instead of forwarding it.
    ++tokens_retired_;
    return false;
  }
  return true;
}

bool TokenRingWorkload::Done() const {
  return tokens_retired_ >= static_cast<uint64_t>(config_.tokens);
}

TokenRingResult TokenRingWorkload::Result() const {
  TokenRingResult result;
  result.completed = Done();
  result.hops = hops_done_;
  result.elapsed_sec = CyclesToSec(machine_.Now());
  result.hops_per_sec =
      result.elapsed_sec > 0 ? static_cast<double>(hops_done_) / result.elapsed_sec : 0.0;
  result.hop_latency_us =
      hops_done_ > 0 ? CyclesToUs(latency_sum_) / static_cast<double>(hops_done_) : 0.0;
  return result;
}

}  // namespace elsc
