#include "src/workloads/volano.h"

#include "src/base/assert.h"
#include "src/base/string_util.h"
#include "src/net/socket_ops.h"
#include "src/workloads/micro_behaviors.h"

namespace elsc {

namespace {

// Shared yield-spin emulation: 2001-era JVM monitors back off through
// sched_yield; each processing step occasionally spins.
class VolanoThreadBase : public TaskBehavior {
 public:
  VolanoThreadBase(VolanoWorkload* workload, Rng rng) : workload_(workload), rng_(rng) {}

 protected:
  const VolanoConfig& cfg() const { return workload_->config(); }

  // Returns a yield segment if a spin is pending; call at the top of
  // NextSegment().
  bool TakeYield(Segment* out) {
    if (pending_yields_ == 0) {
      return false;
    }
    --pending_yields_;
    *out = Segment::Yield(cfg().yield_spin_cycles);
    return true;
  }

  // Rolls the dice for a new yield spin before a processing step.
  void RollYields() {
    if (cfg().yield_probability > 0.0 && rng_.NextBool(cfg().yield_probability)) {
      pending_yields_ = 1 + static_cast<int>(rng_.NextBelow(
                                static_cast<uint64_t>(cfg().max_yield_spin)));
    }
  }

  Cycles Jitter(Cycles base) { return JitterCycles(rng_, base, cfg().work_jitter); }

  // Adaptive wait: spin through sched_yield a few times before parking on
  // `block_seg` (the JVM's spin-then-park locking strategy). The caller must
  // invoke ResetSpin() on the success path.
  Segment SpinOrBlock(Segment block_seg) {
    if (spins_left_ > 0) {
      --spins_left_;
      return Segment::Yield(cfg().yield_spin_cycles);
    }
    spins_left_ = cfg().spin_yields_before_block;  // Re-arm for the next wait.
    return block_seg;
  }

  void ResetSpin() { spins_left_ = cfg().spin_yields_before_block; }

  // Chat threads park until every connection is established (VolanoMark
  // starts the message exchange only once the rooms are fully built).
  bool AwaitStartBarrier(Segment* out) {
    if (workload_->chat_started()) {
      return false;
    }
    VolanoWorkload* w = workload_;
    *out = Segment::Block(cfg().syscall_cycles, w->start_barrier(),
                          [w] { return !w->chat_started(); });
    return true;
  }

  VolanoWorkload* workload_;
  Rng rng_;
  int pending_yields_ = 0;
  int spins_left_ = 0;
};

}  // namespace

// Composes and sends this user's messages; closed loop — the next message is
// composed only after the user's previous message came back in a broadcast.
//
// Churn mode adds the resilient-client protocol: the pacing ack carries a
// receive deadline, so a round trip killed by a wire reset (or simply lost)
// wakes the writer with a timeout; the writer then reconnects both wires,
// backs off with per-user deterministic jitter, and retransmits the same
// message. A message only counts as committed when its own echo returns;
// after backoff.max_retries consecutive failures the client abandons the
// connection. The classic (!churn) paths are untouched.
class VolanoClientWriter : public VolanoThreadBase {
 public:
  VolanoClientWriter(VolanoWorkload* workload, Rng rng, int user)
      : VolanoThreadBase(workload, rng), user_(user) {}

  Segment NextSegment(Machine& machine, Task& task) override {
    if (Segment gate; AwaitStartBarrier(&gate)) {
      return gate;
    }
    Segment yield_seg;
    if (TakeYield(&yield_seg)) {
      return yield_seg;
    }
    auto& conn = workload_->connection(user_);
    switch (phase_) {
      case Phase::kCompose: {
        phase_ = Phase::kWrite;
        RollYields();
        return Segment::RunAgain(Jitter(cfg().compose_cycles));
      }
      case Phase::kWrite: {
        if (!cfg().churn || !msg_in_flight_) {
          msg_ = Message{};
          msg_.id = workload_->next_message_id_++;
          msg_.sender = user_;
          msg_.room = conn.room;
          msg_.sent_at = machine.Now();
          msg_in_flight_ = true;
        }
        const SockStatus st = conn.c2s->TryWriteMsg(machine, msg_);
        if (st == SockStatus::kWouldBlock) {
          // Wire full: spin-yield, then block until the server reader
          // drains it, then retry.
          return SpinOrBlock(BlockUntilWritable(cfg().syscall_cycles, *conn.c2s));
        }
        if (st != SockStatus::kOk) {
          // Reset/closed mid-send (churn only — wires never die otherwise).
          return HandleRoundFailure(machine);
        }
        ResetSpin();
        ++sent_;
        ++workload_->messages_sent_;
        if (!cfg().churn && sent_ == cfg().messages_per_user) {
          return Segment::Exit(cfg().syscall_cycles);
        }
        phase_ = Phase::kAwaitTurn;
        return Segment::RunAgain(cfg().syscall_cycles);
      }
      case Phase::kAwaitTurn: {
        auto& ack = *conn.ack;
        Message token;
        const SockStatus st = ack.TryReadMsg(machine, &token);
        // Clear a pending ack deadline whether or not the token made it —
        // a stale timeout flag must not fail the NEXT round spuriously.
        const bool timed_out = cfg().churn && ConsumeReadTimeout(task, ack);
        if (st == SockStatus::kOk) {
          if (cfg().churn && token.id != msg_.id) {
            // Echo of an earlier retransmission; this round is still open.
            return Segment::RunAgain(cfg().syscall_cycles);
          }
          ack_spins_ = 0;
          attempts_ = 0;
          msg_in_flight_ = false;
          if (cfg().churn) {
            ++committed_;
            if (committed_ == cfg().messages_per_user) {
              workload_->OnWriterDone(user_, /*abandoned=*/false);
              return Segment::Exit(cfg().syscall_cycles);
            }
          }
          phase_ = Phase::kCompose;
          return Segment::RunAgain(cfg().syscall_cycles);
        }
        if (st == SockStatus::kWouldBlock) {
          if (timed_out) {
            // The round trip blew its deadline: presume the message (or its
            // echo) died with a reset and run the retry protocol.
            return HandleRoundFailure(machine);
          }
          // Thread.yield() spin on the round trip, then park.
          if (ack_spins_ < cfg().ack_spin_yields) {
            ++ack_spins_;
            return Segment::Yield(cfg().yield_spin_cycles);
          }
          ack_spins_ = 0;
          return BlockUntilReadable(cfg().syscall_cycles, ack);
        }
        // Ack stream torn down under us: treat like a failed round.
        return HandleRoundFailure(machine);
      }
    }
    __builtin_unreachable();
  }

 private:
  enum class Phase { kCompose, kWrite, kAwaitTurn };

  // The resilient-client core: reconnect both wires, back off with
  // deterministic per-user jitter, retransmit — or abandon once the retry
  // budget is spent.
  Segment HandleRoundFailure(Machine& machine) {
    auto& conn = workload_->connection(user_);
    ++attempts_;
    if (cfg().backoff.ShouldAbandon(attempts_)) {
      ++workload_->abandons_;
      workload_->OnWriterDone(user_, /*abandoned=*/true);
      return Segment::Exit(cfg().syscall_cycles);
    }
    ++workload_->retries_;
    ++workload_->reconnects_;
    conn.c2s->Reopen(machine);
    conn.s2c->Reopen(machine);
    ack_spins_ = 0;
    phase_ = Phase::kWrite;  // Retransmit the in-flight message on wake.
    return Segment::Sleep(
        cfg().syscall_cycles,
        cfg().backoff.Delay(BackoffMix64(static_cast<uint64_t>(user_)), attempts_));
  }

  int user_;
  Phase phase_ = Phase::kCompose;
  int sent_ = 0;
  int committed_ = 0;  // Rounds whose echo returned (churn progress).
  int attempts_ = 0;   // Consecutive failed rounds (reset by any success).
  int ack_spins_ = 0;
  bool msg_in_flight_ = false;
  Message msg_;
};

// Drains the server→client wire, processing each broadcast delivery; when
// the user's own message arrives, releases the writer for the next one.
class VolanoClientReader : public VolanoThreadBase {
 public:
  VolanoClientReader(VolanoWorkload* workload, Rng rng, int user)
      : VolanoThreadBase(workload, rng), user_(user) {}

  Segment NextSegment(Machine& machine, Task& task) override {
    (void)task;
    if (Segment gate; AwaitStartBarrier(&gate)) {
      return gate;
    }
    Segment yield_seg;
    if (TakeYield(&yield_seg)) {
      return yield_seg;
    }
    auto& conn = workload_->connection(user_);
    const int expected = cfg().users_per_room * cfg().messages_per_user;
    if (!cfg().churn && received_ == expected) {
      return Segment::Exit(cfg().syscall_cycles);
    }
    Message msg;
    const SockStatus st = conn.s2c->TryReadMsg(machine, &msg);
    if (st == SockStatus::kWouldBlock) {
      return SpinOrBlock(BlockUntilReadable(cfg().syscall_cycles, *conn.s2c));
    }
    if (st == SockStatus::kEof) {
      if (!cfg().churn || conn.s2c->state() == SocketState::kClosed) {
        // Connection torn down for good (abandon or chat shutdown).
        return Segment::Exit(cfg().syscall_cycles);
      }
      // Injected half-open: the server side is alive and still writing
      // (writes land on a half-open socket), so this EOF is not final.
      // Park until data lands or the state resolves (Reopen/Close/reset
      // all wake the read queue).
      SimSocket* sock = conn.s2c.get();
      return Segment::Block(cfg().syscall_cycles, &sock->read_wait(), [sock] {
        return !sock->CanRead() && sock->state() == SocketState::kHalfOpen;
      });
    }
    if (st == SockStatus::kReset) {
      // The wire died; the client writer owns reconnection. Park until the
      // socket leaves the reset state (Reopen or Close both wake us).
      SimSocket* sock = conn.s2c.get();
      return Segment::Block(cfg().syscall_cycles, &sock->read_wait(),
                            [sock] { return sock->reset(); });
    }
    ResetSpin();
    ++received_;
    ++workload_->messages_delivered_;
    ++workload_->room_delivered_[static_cast<size_t>(conn.room)];
    if (msg.sender == user_) {
      // Our own message completed the round trip: let the writer proceed.
      // The token carries the message id so a churn-mode writer can tell a
      // live echo from the echo of an earlier retransmission.
      Message token;
      token.id = msg.id;
      token.sender = user_;
      const SockStatus ack_st = conn.ack->TryWriteMsg(machine, token);
      if (!cfg().churn) {
        ELSC_CHECK_MSG(ack_st == SockStatus::kOk,
                       "volano ack queue overflow (pacing invariant broken)");
      }
      // Churn: a full/closed ack queue just means a redundant echo from a
      // retransmit storm — dropping the token is safe, the writer's
      // deadline covers the rare loss of a live one.
    }
    RollYields();
    return Segment::RunAgain(Jitter(cfg().client_process_cycles));
  }

 private:
  int user_;
  int received_ = 0;
};

// Reads this connection's inbound wire and fans each message out to every
// room member's output queue.
class VolanoServerReader : public VolanoThreadBase {
 public:
  VolanoServerReader(VolanoWorkload* workload, Rng rng, int user)
      : VolanoThreadBase(workload, rng), user_(user) {}

  Segment NextSegment(Machine& machine, Task& task) override {
    (void)task;
    if (Segment gate; AwaitStartBarrier(&gate)) {
      return gate;
    }
    Segment yield_seg;
    if (TakeYield(&yield_seg)) {
      return yield_seg;
    }
    auto& conn = workload_->connection(user_);
    auto& room = workload_->room_state(conn.room);
    switch (phase_) {
      case Phase::kRead: {
        if (!cfg().churn && handled_ == cfg().messages_per_user) {
          return Segment::Exit(cfg().syscall_cycles);
        }
        Message msg;
        const SockStatus st = conn.c2s->TryReadMsg(machine, &msg);
        if (st == SockStatus::kWouldBlock) {
          return SpinOrBlock(BlockUntilReadable(cfg().syscall_cycles, *conn.c2s));
        }
        if (st == SockStatus::kEof) {
          if (!cfg().churn || conn.c2s->state() == SocketState::kClosed) {
            // The client finished (or abandoned) and closed its wire.
            return Segment::Exit(cfg().syscall_cycles);
          }
          // Injected half-open: the client is alive and its writes still
          // land, so keep serving — exiting here would leave the user
          // permanently deaf and wedge its writer on a full wire.
          SimSocket* sock = conn.c2s.get();
          return Segment::Block(cfg().syscall_cycles, &sock->read_wait(), [sock] {
            return !sock->CanRead() && sock->state() == SocketState::kHalfOpen;
          });
        }
        if (st == SockStatus::kReset) {
          // Injected reset: the client will reconnect (Reopen wakes us);
          // a Close instead means it abandoned, and we exit via kEof above.
          SimSocket* sock = conn.c2s.get();
          return Segment::Block(cfg().syscall_cycles, &sock->read_wait(),
                                [sock] { return sock->reset(); });
        }
        ResetSpin();
        pending_ = msg;
        next_member_ = 0;
        phase_ = Phase::kAcquireLock;
        RollYields();
        return Segment::RunAgain(Jitter(cfg().server_parse_cycles));
      }
      case Phase::kAcquireLock: {
        // The room monitor: broadcasts are serialized per room. Contenders
        // use the JVM's adaptive spin — sched_yield up to lock_spin_yields
        // times hoping the holder releases, then park on the monitor.
        if (!room.lock_held) {
          room.lock_held = true;
          lock_spins_ = 0;
          phase_ = Phase::kBroadcast;
          return Segment::RunAgain(cfg().lock_acquire_cycles);
        }
        ++room.contended_acquires;
        if (lock_spins_ < cfg().lock_spin_yields) {
          ++lock_spins_;
          return Segment::Yield(cfg().yield_spin_cycles);
        }
        lock_spins_ = 0;
        bool* held = &room.lock_held;
        return Segment::Block(cfg().syscall_cycles, room.lock_wait.get(),
                              [held] { return *held; });
      }
      case Phase::kBroadcast: {
        while (next_member_ < cfg().users_per_room) {
          const int target = workload_->UserIndex(conn.room, next_member_);
          SimSocket& outq = *workload_->connection(target).outq;
          const SockStatus st = outq.TryWriteMsg(machine, pending_);
          if (st == SockStatus::kWouldBlock) {
            // Member's output queue full: the broadcast stalls *while
            // holding the room monitor* — the paper era's storm scenario —
            // and resumes exactly where it stopped.
            return BlockUntilWritable(cfg().syscall_cycles, outq);
          }
          if (st != SockStatus::kOk) {
            // Member's connection is gone (abandon/shutdown teardown): the
            // broadcast skips them instead of stalling the whole room.
            ++workload_->messages_lost_;
          }
          ++next_member_;
        }
        ++handled_;
        // Release the monitor and hand it to one parked waiter.
        room.lock_held = false;
        room.lock_wait->WakeOne(machine);
        phase_ = Phase::kRead;
        const Cycles fanout_work =
            cfg().broadcast_enqueue_cycles * static_cast<Cycles>(cfg().users_per_room);
        return Segment::RunAgain(Jitter(fanout_work));
      }
    }
    __builtin_unreachable();
  }

 private:
  enum class Phase { kRead, kAcquireLock, kBroadcast };
  int user_;
  Phase phase_ = Phase::kRead;
  int handled_ = 0;
  Message pending_;
  int next_member_ = 0;
  int lock_spins_ = 0;
};

// Moves messages from this connection's output queue onto the server→client
// wire.
class VolanoServerWriter : public VolanoThreadBase {
 public:
  VolanoServerWriter(VolanoWorkload* workload, Rng rng, int user)
      : VolanoThreadBase(workload, rng), user_(user) {}

  Segment NextSegment(Machine& machine, Task& task) override {
    (void)task;
    if (Segment gate; AwaitStartBarrier(&gate)) {
      return gate;
    }
    Segment yield_seg;
    if (TakeYield(&yield_seg)) {
      return yield_seg;
    }
    auto& conn = workload_->connection(user_);
    const int expected = cfg().users_per_room * cfg().messages_per_user;
    switch (phase_) {
      case Phase::kRead: {
        if (!cfg().churn && forwarded_ == expected) {
          return Segment::Exit(cfg().syscall_cycles);
        }
        Message msg;
        const SockStatus st = conn.outq->TryReadMsg(machine, &msg);
        if (st == SockStatus::kWouldBlock) {
          return SpinOrBlock(BlockUntilReadable(cfg().syscall_cycles, *conn.outq));
        }
        if (st != SockStatus::kOk) {
          // Output queue torn down (abandon/shutdown): nothing left to pump.
          return Segment::Exit(cfg().syscall_cycles);
        }
        ResetSpin();
        pending_ = msg;
        phase_ = Phase::kForward;
        RollYields();
        return Segment::RunAgain(Jitter(cfg().server_write_cycles));
      }
      case Phase::kForward: {
        const SockStatus st = conn.s2c->TryWriteMsg(machine, pending_);
        if (st == SockStatus::kWouldBlock) {
          return SpinOrBlock(BlockUntilWritable(cfg().syscall_cycles, *conn.s2c));
        }
        if (st == SockStatus::kOk) {
          ResetSpin();
          ++forwarded_;
          phase_ = Phase::kRead;
          return Segment::RunAgain(cfg().syscall_cycles);
        }
        // The wire died under this delivery.
        ++workload_->messages_lost_;
        if (st == SockStatus::kClosed) {
          // Torn down for good (abandon or shutdown): stop serving.
          return Segment::Exit(cfg().syscall_cycles);
        }
        // Reset: the client will reconnect; drop the delivery and go back
        // to pumping once the wire leaves the reset state.
        phase_ = Phase::kRead;
        SimSocket* sock = conn.s2c.get();
        return Segment::Block(cfg().syscall_cycles, &sock->write_wait(),
                              [sock] { return sock->reset(); });
      }
    }
    __builtin_unreachable();
  }

 private:
  enum class Phase { kRead, kForward };
  int user_;
  Phase phase_ = Phase::kRead;
  int forwarded_ = 0;
  Message pending_;
};

// The client's main thread: opens every connection in sequence, yield-
// polling each handshake (Thread.yield() while the listener works), then
// releases the start barrier. During this ramp it is usually the only
// runnable task in the system.
class VolanoConnector : public VolanoThreadBase {
 public:
  VolanoConnector(VolanoWorkload* workload, Rng rng) : VolanoThreadBase(workload, rng) {}

  Segment NextSegment(Machine& machine, Task& task) override {
    (void)task;
    const int total_users = cfg().rooms * cfg().users_per_room;
    switch (phase_) {
      case Phase::kSendConnect: {
        if (next_user_ == total_users) {
          // Every connection is up: release the chat threads and retire.
          workload_->chat_started_ = true;
          workload_->start_barrier_->WakeAll(machine);
          return Segment::Exit(cfg().syscall_cycles);
        }
        Message syn;
        syn.sender = next_user_;
        if (!workload_->accept_queue_->TryWrite(machine, syn)) {
          return BlockUntilWritable(cfg().syscall_cycles, *workload_->accept_queue_);
        }
        spins_ = 0;
        phase_ = Phase::kAwaitAccept;
        return Segment::RunAgain(cfg().syscall_cycles);
      }
      case Phase::kAwaitAccept: {
        auto& ack = *workload_->connection(next_user_).ack;
        if (!ack.TryRead(machine).has_value()) {
          if (spins_ < cfg().connect_spin_yields) {
            ++spins_;
            return Segment::Yield(cfg().yield_spin_cycles);
          }
          return BlockUntilReadable(cfg().syscall_cycles, ack);
        }
        // Connection up: spawn this user's client threads, move on.
        workload_->SpawnClientThreads(next_user_);
        ++next_user_;
        phase_ = Phase::kSendConnect;
        return Segment::RunAgain(cfg().syscall_cycles);
      }
    }
    __builtin_unreachable();
  }

 private:
  enum class Phase { kSendConnect, kAwaitAccept };
  Phase phase_ = Phase::kSendConnect;
  int next_user_ = 0;
  int spins_ = 0;
};

// The server's listener: accepts each connection, spawns its per-connection
// service threads, acknowledges the client, and exits once every expected
// connection has been accepted.
class VolanoListener : public VolanoThreadBase {
 public:
  VolanoListener(VolanoWorkload* workload, Rng rng) : VolanoThreadBase(workload, rng) {}

  Segment NextSegment(Machine& machine, Task& task) override {
    (void)task;
    const int total_users = cfg().rooms * cfg().users_per_room;
    switch (phase_) {
      case Phase::kAccept: {
        if (accepted_ == total_users) {
          return Segment::Exit(cfg().syscall_cycles);
        }
        auto syn = workload_->accept_queue_->TryRead(machine);
        if (!syn.has_value()) {
          return BlockUntilReadable(cfg().syscall_cycles, *workload_->accept_queue_);
        }
        pending_user_ = syn->sender;
        phase_ = Phase::kSetup;
        return Segment::RunAgain(Jitter(cfg().accept_work_cycles));
      }
      case Phase::kSetup: {
        // Socket/thread setup latency on the server side.
        phase_ = Phase::kFinish;
        return Segment::Sleep(cfg().syscall_cycles, Jitter(cfg().accept_latency_mean));
      }
      case Phase::kFinish: {
        workload_->SpawnServerThreads(pending_user_);
        Message ack;
        ack.sender = pending_user_;
        const bool ok = workload_->connection(pending_user_).ack->TryWrite(machine, ack);
        ELSC_CHECK_MSG(ok, "volano handshake ack overflow");
        ++accepted_;
        phase_ = Phase::kAccept;
        return Segment::RunAgain(cfg().syscall_cycles);
      }
    }
    __builtin_unreachable();
  }

 private:
  enum class Phase { kAccept, kSetup, kFinish };
  Phase phase_ = Phase::kAccept;
  int pending_user_ = 0;
  int accepted_ = 0;
};

VolanoWorkload::VolanoWorkload(Machine& machine, const VolanoConfig& config)
    : machine_(machine), config_(config), rng_(machine.rng().Fork()) {
  ELSC_CHECK(config_.rooms >= 1);
  ELSC_CHECK(config_.users_per_room >= 1);
  ELSC_CHECK(config_.messages_per_user >= 1);
}

VolanoWorkload::~VolanoWorkload() = default;

void VolanoWorkload::Setup() {
  server_mm_ = machine_.CreateMm();
  client_mm_ = machine_.CreateMm();
  accept_queue_ = std::make_unique<SimSocket>("server.accept", 4);
  start_barrier_ = std::make_unique<WaitQueue>("volano.start");

  const int total_users = config_.rooms * config_.users_per_room;
  room_delivered_.assign(static_cast<size_t>(config_.rooms), 0);
  rooms_.reserve(static_cast<size_t>(config_.rooms));
  for (int room = 0; room < config_.rooms; ++room) {
    auto state = std::make_unique<RoomState>();
    state->lock_wait = std::make_unique<WaitQueue>(StrFormat("room%d.monitor", room));
    rooms_.push_back(std::move(state));
  }
  connections_.reserve(static_cast<size_t>(total_users));
  for (int room = 0; room < config_.rooms; ++room) {
    for (int member = 0; member < config_.users_per_room; ++member) {
      const int user = UserIndex(room, member);
      auto conn = std::make_unique<Connection>();
      conn->user = user;
      conn->room = room;
      const std::string base = StrFormat("r%d.u%d", room, member);
      conn->c2s = std::make_unique<SimSocket>(base + ".c2s", config_.socket_capacity);
      conn->s2c = std::make_unique<SimSocket>(base + ".s2c", config_.socket_capacity);
      conn->outq = std::make_unique<SimSocket>(base + ".outq", config_.outqueue_capacity);
      conn->ack = std::make_unique<SimSocket>(base + ".ack", 4);
      if (config_.churn) {
        // The resilient client's round-trip deadline: a lost echo wakes the
        // writer with a timeout instead of parking it forever.
        conn->ack->set_rcv_timeout(config_.ack_timeout);
      }
      connections_.push_back(std::move(conn));
    }
  }

  // Only the server listener and the client connector exist at boot; they
  // spawn the per-connection threads as each connection is established,
  // exactly as the real benchmark does.
  auto listener = std::make_unique<VolanoListener>(this, rng_.Fork());
  TaskParams lp;
  lp.name = "server.listener";
  lp.mm = server_mm_;
  lp.behavior = listener.get();
  machine_.CreateTask(lp);
  behaviors_.push_back(std::move(listener));

  auto connector = std::make_unique<VolanoConnector>(this, rng_.Fork());
  TaskParams cp;
  cp.name = "client.main";
  cp.mm = client_mm_;
  cp.behavior = connector.get();
  machine_.CreateTask(cp);
  behaviors_.push_back(std::move(connector));
}

void VolanoWorkload::SpawnServerThreads(int user) {
  auto& conn = connection(user);
  const std::string base = StrFormat("r%d.u%d", conn.room, user % config_.users_per_room);

  auto server_reader = std::make_unique<VolanoServerReader>(this, rng_.Fork(), user);
  auto server_writer = std::make_unique<VolanoServerWriter>(this, rng_.Fork(), user);

  TaskParams params;
  params.mm = server_mm_;
  params.name = base + ".sr";
  params.behavior = server_reader.get();
  machine_.CreateTask(params);
  params.name = base + ".sw";
  params.behavior = server_writer.get();
  machine_.CreateTask(params);

  behaviors_.push_back(std::move(server_reader));
  behaviors_.push_back(std::move(server_writer));
}

void VolanoWorkload::SpawnClientThreads(int user) {
  auto& conn = connection(user);
  const std::string base = StrFormat("r%d.u%d", conn.room, user % config_.users_per_room);

  auto client_writer = std::make_unique<VolanoClientWriter>(this, rng_.Fork(), user);
  auto client_reader = std::make_unique<VolanoClientReader>(this, rng_.Fork(), user);

  TaskParams params;
  params.mm = client_mm_;
  params.name = base + ".cw";
  params.behavior = client_writer.get();
  machine_.CreateTask(params);
  params.name = base + ".cr";
  params.behavior = client_reader.get();
  machine_.CreateTask(params);

  behaviors_.push_back(std::move(client_writer));
  behaviors_.push_back(std::move(client_reader));
}

std::vector<SimSocket*> VolanoWorkload::LifecycleTargets() {
  std::vector<SimSocket*> targets;
  targets.reserve(connections_.size() * 2);
  for (auto& conn : connections_) {
    targets.push_back(conn->c2s.get());
    targets.push_back(conn->s2c.get());
  }
  return targets;
}

void VolanoWorkload::OnWriterDone(int user, bool abandoned) {
  auto& conn = connection(user);
  // Orderly client-side close: the server reader drains and sees EOF.
  conn.c2s->Close(machine_);
  if (abandoned) {
    // Tear the whole connection down, output queue included — the room must
    // not keep broadcasting into a queue nobody will ever drain again.
    conn.s2c->Close(machine_);
    conn.outq->Close(machine_);
  }
  ++done_writers_;
  const auto total = static_cast<uint64_t>(config_.rooms) * config_.users_per_room;
  if (done_writers_ == total) {
    ShutdownChat();
  }
}

void VolanoWorkload::ShutdownChat() {
  // Every client finished: close the remaining per-connection streams so
  // readers and pumps drain to EOF and exit (Close is idempotent for the
  // connections an abandon already tore down).
  for (auto& conn : connections_) {
    conn->s2c->Close(machine_);
    conn->outq->Close(machine_);
    conn->ack->Close(machine_);
  }
}

bool VolanoWorkload::Done() const {
  if (config_.churn) {
    const auto total = static_cast<uint64_t>(config_.rooms) * config_.users_per_room;
    return done_writers_ == total && machine_.live_tasks() == 0;
  }
  return messages_delivered_ == config_.expected_deliveries() && machine_.live_tasks() == 0;
}

VolanoResult VolanoWorkload::Result() const {
  VolanoResult result;
  result.completed = Done();
  result.elapsed_sec = CyclesToSec(machine_.Now());
  result.messages_sent = messages_sent_;
  result.messages_delivered = messages_delivered_;
  result.throughput =
      result.elapsed_sec > 0 ? static_cast<double>(messages_delivered_) / result.elapsed_sec : 0.0;
  result.retries = retries_;
  result.reconnects = reconnects_;
  result.abandons = abandons_;
  uint64_t resets = 0;
  uint64_t discarded = 0;
  for (const auto& conn : connections_) {
    resets += conn->c2s->stats().peer_resets + conn->s2c->stats().peer_resets;
    discarded += conn->c2s->stats().discarded + conn->s2c->stats().discarded;
  }
  result.resets_seen = resets;
  // Lost = in-flight messages destroyed by resets/reopens plus deliveries
  // skipped or dropped against dead connections.
  result.messages_lost = messages_lost_ + discarded;
  return result;
}

}  // namespace elsc
