#include "src/workloads/volano.h"

#include "src/base/assert.h"
#include "src/base/string_util.h"
#include "src/net/socket_ops.h"
#include "src/workloads/micro_behaviors.h"

namespace elsc {

namespace {

// Shared yield-spin emulation: 2001-era JVM monitors back off through
// sched_yield; each processing step occasionally spins.
class VolanoThreadBase : public TaskBehavior {
 public:
  VolanoThreadBase(VolanoWorkload* workload, Rng rng) : workload_(workload), rng_(rng) {}

 protected:
  const VolanoConfig& cfg() const { return workload_->config(); }

  // Returns a yield segment if a spin is pending; call at the top of
  // NextSegment().
  bool TakeYield(Segment* out) {
    if (pending_yields_ == 0) {
      return false;
    }
    --pending_yields_;
    *out = Segment::Yield(cfg().yield_spin_cycles);
    return true;
  }

  // Rolls the dice for a new yield spin before a processing step.
  void RollYields() {
    if (cfg().yield_probability > 0.0 && rng_.NextBool(cfg().yield_probability)) {
      pending_yields_ = 1 + static_cast<int>(rng_.NextBelow(
                                static_cast<uint64_t>(cfg().max_yield_spin)));
    }
  }

  Cycles Jitter(Cycles base) { return JitterCycles(rng_, base, cfg().work_jitter); }

  // Adaptive wait: spin through sched_yield a few times before parking on
  // `block_seg` (the JVM's spin-then-park locking strategy). The caller must
  // invoke ResetSpin() on the success path.
  Segment SpinOrBlock(Segment block_seg) {
    if (spins_left_ > 0) {
      --spins_left_;
      return Segment::Yield(cfg().yield_spin_cycles);
    }
    spins_left_ = cfg().spin_yields_before_block;  // Re-arm for the next wait.
    return block_seg;
  }

  void ResetSpin() { spins_left_ = cfg().spin_yields_before_block; }

  // Chat threads park until every connection is established (VolanoMark
  // starts the message exchange only once the rooms are fully built).
  bool AwaitStartBarrier(Segment* out) {
    if (workload_->chat_started()) {
      return false;
    }
    VolanoWorkload* w = workload_;
    *out = Segment::Block(cfg().syscall_cycles, w->start_barrier(),
                          [w] { return !w->chat_started(); });
    return true;
  }

  VolanoWorkload* workload_;
  Rng rng_;
  int pending_yields_ = 0;
  int spins_left_ = 0;
};

}  // namespace

// Composes and sends this user's messages; closed loop — the next message is
// composed only after the user's previous message came back in a broadcast.
class VolanoClientWriter : public VolanoThreadBase {
 public:
  VolanoClientWriter(VolanoWorkload* workload, Rng rng, int user)
      : VolanoThreadBase(workload, rng), user_(user) {}

  Segment NextSegment(Machine& machine, Task& task) override {
    (void)task;
    if (Segment gate; AwaitStartBarrier(&gate)) {
      return gate;
    }
    Segment yield_seg;
    if (TakeYield(&yield_seg)) {
      return yield_seg;
    }
    auto& conn = workload_->connection(user_);
    switch (phase_) {
      case Phase::kCompose: {
        phase_ = Phase::kWrite;
        RollYields();
        return Segment::RunAgain(Jitter(cfg().compose_cycles));
      }
      case Phase::kWrite: {
        Message msg;
        msg.id = workload_->next_message_id_++;
        msg.sender = user_;
        msg.room = conn.room;
        msg.sent_at = machine.Now();
        if (!conn.c2s->TryWrite(machine, msg)) {
          // Wire full: spin-yield, then block until the server reader
          // drains it, then retry.
          return SpinOrBlock(BlockUntilWritable(cfg().syscall_cycles, *conn.c2s));
        }
        ResetSpin();
        ++sent_;
        ++workload_->messages_sent_;
        if (sent_ == cfg().messages_per_user) {
          return Segment::Exit(cfg().syscall_cycles);
        }
        phase_ = Phase::kAwaitTurn;
        return Segment::RunAgain(cfg().syscall_cycles);
      }
      case Phase::kAwaitTurn: {
        auto& ack = *conn.ack;
        if (!ack.TryRead(machine).has_value()) {
          // Thread.yield() spin on the round trip, then park.
          if (ack_spins_ < cfg().ack_spin_yields) {
            ++ack_spins_;
            return Segment::Yield(cfg().yield_spin_cycles);
          }
          ack_spins_ = 0;
          return BlockUntilReadable(cfg().syscall_cycles, ack);
        }
        ack_spins_ = 0;
        phase_ = Phase::kCompose;
        return Segment::RunAgain(cfg().syscall_cycles);
      }
    }
    __builtin_unreachable();
  }

 private:
  enum class Phase { kCompose, kWrite, kAwaitTurn };
  int user_;
  Phase phase_ = Phase::kCompose;
  int sent_ = 0;
  int ack_spins_ = 0;
};

// Drains the server→client wire, processing each broadcast delivery; when
// the user's own message arrives, releases the writer for the next one.
class VolanoClientReader : public VolanoThreadBase {
 public:
  VolanoClientReader(VolanoWorkload* workload, Rng rng, int user)
      : VolanoThreadBase(workload, rng), user_(user) {}

  Segment NextSegment(Machine& machine, Task& task) override {
    (void)task;
    if (Segment gate; AwaitStartBarrier(&gate)) {
      return gate;
    }
    Segment yield_seg;
    if (TakeYield(&yield_seg)) {
      return yield_seg;
    }
    auto& conn = workload_->connection(user_);
    const int expected = cfg().users_per_room * cfg().messages_per_user;
    if (received_ == expected) {
      return Segment::Exit(cfg().syscall_cycles);
    }
    auto msg = conn.s2c->TryRead(machine);
    if (!msg.has_value()) {
      return SpinOrBlock(BlockUntilReadable(cfg().syscall_cycles, *conn.s2c));
    }
    ResetSpin();
    ++received_;
    ++workload_->messages_delivered_;
    if (msg->sender == user_) {
      // Our own message completed the round trip: let the writer proceed.
      Message token;
      token.sender = user_;
      const bool ok = conn.ack->TryWrite(machine, token);
      ELSC_CHECK_MSG(ok, "volano ack queue overflow (pacing invariant broken)");
    }
    RollYields();
    return Segment::RunAgain(Jitter(cfg().client_process_cycles));
  }

 private:
  int user_;
  int received_ = 0;
};

// Reads this connection's inbound wire and fans each message out to every
// room member's output queue.
class VolanoServerReader : public VolanoThreadBase {
 public:
  VolanoServerReader(VolanoWorkload* workload, Rng rng, int user)
      : VolanoThreadBase(workload, rng), user_(user) {}

  Segment NextSegment(Machine& machine, Task& task) override {
    (void)task;
    if (Segment gate; AwaitStartBarrier(&gate)) {
      return gate;
    }
    Segment yield_seg;
    if (TakeYield(&yield_seg)) {
      return yield_seg;
    }
    auto& conn = workload_->connection(user_);
    auto& room = workload_->room_state(conn.room);
    switch (phase_) {
      case Phase::kRead: {
        if (handled_ == cfg().messages_per_user) {
          return Segment::Exit(cfg().syscall_cycles);
        }
        auto msg = conn.c2s->TryRead(machine);
        if (!msg.has_value()) {
          return SpinOrBlock(BlockUntilReadable(cfg().syscall_cycles, *conn.c2s));
        }
        ResetSpin();
        pending_ = *msg;
        next_member_ = 0;
        phase_ = Phase::kAcquireLock;
        RollYields();
        return Segment::RunAgain(Jitter(cfg().server_parse_cycles));
      }
      case Phase::kAcquireLock: {
        // The room monitor: broadcasts are serialized per room. Contenders
        // use the JVM's adaptive spin — sched_yield up to lock_spin_yields
        // times hoping the holder releases, then park on the monitor.
        if (!room.lock_held) {
          room.lock_held = true;
          lock_spins_ = 0;
          phase_ = Phase::kBroadcast;
          return Segment::RunAgain(cfg().lock_acquire_cycles);
        }
        ++room.contended_acquires;
        if (lock_spins_ < cfg().lock_spin_yields) {
          ++lock_spins_;
          return Segment::Yield(cfg().yield_spin_cycles);
        }
        lock_spins_ = 0;
        bool* held = &room.lock_held;
        return Segment::Block(cfg().syscall_cycles, room.lock_wait.get(),
                              [held] { return *held; });
      }
      case Phase::kBroadcast: {
        while (next_member_ < cfg().users_per_room) {
          const int target = workload_->UserIndex(conn.room, next_member_);
          SimSocket& outq = *workload_->connection(target).outq;
          if (!outq.TryWrite(machine, pending_)) {
            // Member's output queue full: the broadcast stalls *while
            // holding the room monitor* — the paper era's storm scenario —
            // and resumes exactly where it stopped.
            return BlockUntilWritable(cfg().syscall_cycles, outq);
          }
          ++next_member_;
        }
        ++handled_;
        // Release the monitor and hand it to one parked waiter.
        room.lock_held = false;
        room.lock_wait->WakeOne(machine);
        phase_ = Phase::kRead;
        const Cycles fanout_work =
            cfg().broadcast_enqueue_cycles * static_cast<Cycles>(cfg().users_per_room);
        return Segment::RunAgain(Jitter(fanout_work));
      }
    }
    __builtin_unreachable();
  }

 private:
  enum class Phase { kRead, kAcquireLock, kBroadcast };
  int user_;
  Phase phase_ = Phase::kRead;
  int handled_ = 0;
  Message pending_;
  int next_member_ = 0;
  int lock_spins_ = 0;
};

// Moves messages from this connection's output queue onto the server→client
// wire.
class VolanoServerWriter : public VolanoThreadBase {
 public:
  VolanoServerWriter(VolanoWorkload* workload, Rng rng, int user)
      : VolanoThreadBase(workload, rng), user_(user) {}

  Segment NextSegment(Machine& machine, Task& task) override {
    (void)task;
    if (Segment gate; AwaitStartBarrier(&gate)) {
      return gate;
    }
    Segment yield_seg;
    if (TakeYield(&yield_seg)) {
      return yield_seg;
    }
    auto& conn = workload_->connection(user_);
    const int expected = cfg().users_per_room * cfg().messages_per_user;
    switch (phase_) {
      case Phase::kRead: {
        if (forwarded_ == expected) {
          return Segment::Exit(cfg().syscall_cycles);
        }
        auto msg = conn.outq->TryRead(machine);
        if (!msg.has_value()) {
          return SpinOrBlock(BlockUntilReadable(cfg().syscall_cycles, *conn.outq));
        }
        ResetSpin();
        pending_ = *msg;
        phase_ = Phase::kForward;
        RollYields();
        return Segment::RunAgain(Jitter(cfg().server_write_cycles));
      }
      case Phase::kForward: {
        if (!conn.s2c->TryWrite(machine, pending_)) {
          return SpinOrBlock(BlockUntilWritable(cfg().syscall_cycles, *conn.s2c));
        }
        ResetSpin();
        ++forwarded_;
        phase_ = Phase::kRead;
        return Segment::RunAgain(cfg().syscall_cycles);
      }
    }
    __builtin_unreachable();
  }

 private:
  enum class Phase { kRead, kForward };
  int user_;
  Phase phase_ = Phase::kRead;
  int forwarded_ = 0;
  Message pending_;
};

// The client's main thread: opens every connection in sequence, yield-
// polling each handshake (Thread.yield() while the listener works), then
// releases the start barrier. During this ramp it is usually the only
// runnable task in the system.
class VolanoConnector : public VolanoThreadBase {
 public:
  VolanoConnector(VolanoWorkload* workload, Rng rng) : VolanoThreadBase(workload, rng) {}

  Segment NextSegment(Machine& machine, Task& task) override {
    (void)task;
    const int total_users = cfg().rooms * cfg().users_per_room;
    switch (phase_) {
      case Phase::kSendConnect: {
        if (next_user_ == total_users) {
          // Every connection is up: release the chat threads and retire.
          workload_->chat_started_ = true;
          workload_->start_barrier_->WakeAll(machine);
          return Segment::Exit(cfg().syscall_cycles);
        }
        Message syn;
        syn.sender = next_user_;
        if (!workload_->accept_queue_->TryWrite(machine, syn)) {
          return BlockUntilWritable(cfg().syscall_cycles, *workload_->accept_queue_);
        }
        spins_ = 0;
        phase_ = Phase::kAwaitAccept;
        return Segment::RunAgain(cfg().syscall_cycles);
      }
      case Phase::kAwaitAccept: {
        auto& ack = *workload_->connection(next_user_).ack;
        if (!ack.TryRead(machine).has_value()) {
          if (spins_ < cfg().connect_spin_yields) {
            ++spins_;
            return Segment::Yield(cfg().yield_spin_cycles);
          }
          return BlockUntilReadable(cfg().syscall_cycles, ack);
        }
        // Connection up: spawn this user's client threads, move on.
        workload_->SpawnClientThreads(next_user_);
        ++next_user_;
        phase_ = Phase::kSendConnect;
        return Segment::RunAgain(cfg().syscall_cycles);
      }
    }
    __builtin_unreachable();
  }

 private:
  enum class Phase { kSendConnect, kAwaitAccept };
  Phase phase_ = Phase::kSendConnect;
  int next_user_ = 0;
  int spins_ = 0;
};

// The server's listener: accepts each connection, spawns its per-connection
// service threads, acknowledges the client, and exits once every expected
// connection has been accepted.
class VolanoListener : public VolanoThreadBase {
 public:
  VolanoListener(VolanoWorkload* workload, Rng rng) : VolanoThreadBase(workload, rng) {}

  Segment NextSegment(Machine& machine, Task& task) override {
    (void)task;
    const int total_users = cfg().rooms * cfg().users_per_room;
    switch (phase_) {
      case Phase::kAccept: {
        if (accepted_ == total_users) {
          return Segment::Exit(cfg().syscall_cycles);
        }
        auto syn = workload_->accept_queue_->TryRead(machine);
        if (!syn.has_value()) {
          return BlockUntilReadable(cfg().syscall_cycles, *workload_->accept_queue_);
        }
        pending_user_ = syn->sender;
        phase_ = Phase::kSetup;
        return Segment::RunAgain(Jitter(cfg().accept_work_cycles));
      }
      case Phase::kSetup: {
        // Socket/thread setup latency on the server side.
        phase_ = Phase::kFinish;
        return Segment::Sleep(cfg().syscall_cycles, Jitter(cfg().accept_latency_mean));
      }
      case Phase::kFinish: {
        workload_->SpawnServerThreads(pending_user_);
        Message ack;
        ack.sender = pending_user_;
        const bool ok = workload_->connection(pending_user_).ack->TryWrite(machine, ack);
        ELSC_CHECK_MSG(ok, "volano handshake ack overflow");
        ++accepted_;
        phase_ = Phase::kAccept;
        return Segment::RunAgain(cfg().syscall_cycles);
      }
    }
    __builtin_unreachable();
  }

 private:
  enum class Phase { kAccept, kSetup, kFinish };
  Phase phase_ = Phase::kAccept;
  int pending_user_ = 0;
  int accepted_ = 0;
};

VolanoWorkload::VolanoWorkload(Machine& machine, const VolanoConfig& config)
    : machine_(machine), config_(config), rng_(machine.rng().Fork()) {
  ELSC_CHECK(config_.rooms >= 1);
  ELSC_CHECK(config_.users_per_room >= 1);
  ELSC_CHECK(config_.messages_per_user >= 1);
}

VolanoWorkload::~VolanoWorkload() = default;

void VolanoWorkload::Setup() {
  server_mm_ = machine_.CreateMm();
  client_mm_ = machine_.CreateMm();
  accept_queue_ = std::make_unique<SimSocket>("server.accept", 4);
  start_barrier_ = std::make_unique<WaitQueue>("volano.start");

  const int total_users = config_.rooms * config_.users_per_room;
  rooms_.reserve(static_cast<size_t>(config_.rooms));
  for (int room = 0; room < config_.rooms; ++room) {
    auto state = std::make_unique<RoomState>();
    state->lock_wait = std::make_unique<WaitQueue>(StrFormat("room%d.monitor", room));
    rooms_.push_back(std::move(state));
  }
  connections_.reserve(static_cast<size_t>(total_users));
  for (int room = 0; room < config_.rooms; ++room) {
    for (int member = 0; member < config_.users_per_room; ++member) {
      const int user = UserIndex(room, member);
      auto conn = std::make_unique<Connection>();
      conn->user = user;
      conn->room = room;
      const std::string base = StrFormat("r%d.u%d", room, member);
      conn->c2s = std::make_unique<SimSocket>(base + ".c2s", config_.socket_capacity);
      conn->s2c = std::make_unique<SimSocket>(base + ".s2c", config_.socket_capacity);
      conn->outq = std::make_unique<SimSocket>(base + ".outq", config_.outqueue_capacity);
      conn->ack = std::make_unique<SimSocket>(base + ".ack", 4);
      connections_.push_back(std::move(conn));
    }
  }

  // Only the server listener and the client connector exist at boot; they
  // spawn the per-connection threads as each connection is established,
  // exactly as the real benchmark does.
  auto listener = std::make_unique<VolanoListener>(this, rng_.Fork());
  TaskParams lp;
  lp.name = "server.listener";
  lp.mm = server_mm_;
  lp.behavior = listener.get();
  machine_.CreateTask(lp);
  behaviors_.push_back(std::move(listener));

  auto connector = std::make_unique<VolanoConnector>(this, rng_.Fork());
  TaskParams cp;
  cp.name = "client.main";
  cp.mm = client_mm_;
  cp.behavior = connector.get();
  machine_.CreateTask(cp);
  behaviors_.push_back(std::move(connector));
}

void VolanoWorkload::SpawnServerThreads(int user) {
  auto& conn = connection(user);
  const std::string base = StrFormat("r%d.u%d", conn.room, user % config_.users_per_room);

  auto server_reader = std::make_unique<VolanoServerReader>(this, rng_.Fork(), user);
  auto server_writer = std::make_unique<VolanoServerWriter>(this, rng_.Fork(), user);

  TaskParams params;
  params.mm = server_mm_;
  params.name = base + ".sr";
  params.behavior = server_reader.get();
  machine_.CreateTask(params);
  params.name = base + ".sw";
  params.behavior = server_writer.get();
  machine_.CreateTask(params);

  behaviors_.push_back(std::move(server_reader));
  behaviors_.push_back(std::move(server_writer));
}

void VolanoWorkload::SpawnClientThreads(int user) {
  auto& conn = connection(user);
  const std::string base = StrFormat("r%d.u%d", conn.room, user % config_.users_per_room);

  auto client_writer = std::make_unique<VolanoClientWriter>(this, rng_.Fork(), user);
  auto client_reader = std::make_unique<VolanoClientReader>(this, rng_.Fork(), user);

  TaskParams params;
  params.mm = client_mm_;
  params.name = base + ".cw";
  params.behavior = client_writer.get();
  machine_.CreateTask(params);
  params.name = base + ".cr";
  params.behavior = client_reader.get();
  machine_.CreateTask(params);

  behaviors_.push_back(std::move(client_writer));
  behaviors_.push_back(std::move(client_reader));
}

bool VolanoWorkload::Done() const {
  return messages_delivered_ == config_.expected_deliveries() && machine_.live_tasks() == 0;
}

VolanoResult VolanoWorkload::Result() const {
  VolanoResult result;
  result.completed = Done();
  result.elapsed_sec = CyclesToSec(machine_.Now());
  result.messages_sent = messages_sent_;
  result.messages_delivered = messages_delivered_;
  result.throughput =
      result.elapsed_sec > 0 ? static_cast<double>(messages_delivered_) / result.elapsed_sec : 0.0;
  return result;
}

}  // namespace elsc
