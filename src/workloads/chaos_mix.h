// Chaos-mix workload: a seeded, finite stew of every task species the kernel
// model supports — spinners, sched_yield hammerers, interactive sleepers,
// wait-queue sleepers (driven by a periodic wake pulse), fork()ing parents,
// and short real-time tasks.
//
// This is the substrate the fault-injection and invariant-audit tests run
// on: it deliberately exercises every scheduler path (quantum expiry, yield
// penalty, wake preemption, fork quantum split, RT supremacy, exit) while
// still being guaranteed to terminate, so Done() can simply wait for the
// task population to drain to zero. Everything is derived from the config
// seed; the same seed always produces the identical event sequence.

#ifndef SRC_WORKLOADS_CHAOS_MIX_H_
#define SRC_WORKLOADS_CHAOS_MIX_H_

#include <cstdint>
#include <memory>
#include <vector>

#include "src/base/rng.h"
#include "src/kernel/wait_queue.h"
#include "src/smp/machine.h"

namespace elsc {

struct ChaosMixConfig {
  uint64_t seed = 1;
  int spinners = 6;     // Finite CPU hogs, 5-20 ms of work each.
  int yielders = 4;     // Burst + sched_yield loops (JVM spin locks).
  int interactive = 5;  // Burst/sleep cycles, 4-12 iterations.
  int waiters = 4;      // Block on the shared wait queue, exit after 2-4 wakes.
  int forkers = 2;      // Each forks `forker_children` short-lived children.
  int forker_children = 3;
  int rt_tasks = 1;     // SCHED_RR spinners with a few ms of work.
  // Period of the wake pulse that drains the waiters.
  Cycles wake_period = MsToCycles(7);
};

struct ChaosMixResult {
  bool completed = false;      // Every task (workload + injected) exited.
  uint64_t tasks_spawned = 0;  // Machine-wide, fault-injected tasks included.
};

class ChaosMixWorkload {
 public:
  ChaosMixWorkload(Machine& machine, const ChaosMixConfig& config);
  ~ChaosMixWorkload();

  ChaosMixWorkload(const ChaosMixWorkload&) = delete;
  ChaosMixWorkload& operator=(const ChaosMixWorkload&) = delete;

  void Setup();
  // The population drains to zero: every behavior is finite, and the wake
  // pulse keeps firing until the last waiter has been woken enough times.
  bool Done() const;
  ChaosMixResult Result() const;

  const ChaosMixConfig& config() const { return config_; }

 private:
  friend class ChaosForker;

  void WakePulse();
  TaskBehavior* Adopt(std::unique_ptr<TaskBehavior> behavior);

  Machine& machine_;
  ChaosMixConfig config_;
  Rng rng_;
  WaitQueue queue_{"chaos-mix"};
  std::vector<std::unique_ptr<TaskBehavior>> behaviors_;
  struct WaiterSlot {
    const class WaiterBehavior* behavior;
    uint64_t wakes_needed;
  };
  std::vector<WaiterSlot> waiters_;
};

}  // namespace elsc

#endif  // SRC_WORKLOADS_CHAOS_MIX_H_
