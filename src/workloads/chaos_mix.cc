#include "src/workloads/chaos_mix.h"

#include <string>
#include <utility>

#include "src/kernel/policy.h"
#include "src/workloads/micro_behaviors.h"

namespace elsc {

// Forks `children` short-lived fixed-work children, one per segment (so the
// forks interleave with scheduling and quantum splitting), then exits.
class ChaosForker : public TaskBehavior {
 public:
  ChaosForker(ChaosMixWorkload* workload, int children)
      : workload_(workload), children_(children) {}

  Segment NextSegment(Machine& machine, Task& task) override {
    if (forked_ >= children_) {
      return Segment::Exit(UsToCycles(30));
    }
    ++forked_;
    const Cycles work = MsToCycles(1 + workload_->rng_.NextBelow(3));
    TaskParams params;
    params.name = task.name + "-child";
    params.behavior = workload_->Adopt(
        std::make_unique<FixedWorkBehavior>(work, UsToCycles(400)));
    machine.ForkTask(&task, params);
    return Segment::RunAgain(UsToCycles(80));
  }

 private:
  ChaosMixWorkload* workload_;
  int children_;
  int forked_ = 0;
};

ChaosMixWorkload::ChaosMixWorkload(Machine& machine, const ChaosMixConfig& config)
    : machine_(machine), config_(config), rng_(config.seed ^ 0x9e3779b97f4a7c15ULL) {}

ChaosMixWorkload::~ChaosMixWorkload() = default;

TaskBehavior* ChaosMixWorkload::Adopt(std::unique_ptr<TaskBehavior> behavior) {
  behaviors_.push_back(std::move(behavior));
  return behaviors_.back().get();
}

void ChaosMixWorkload::Setup() {
  for (int i = 0; i < config_.spinners; ++i) {
    TaskParams params;
    params.name = "mix-spin-" + std::to_string(i);
    params.priority = 10 + static_cast<long>(rng_.NextBelow(25));
    params.behavior = Adopt(std::make_unique<SpinnerBehavior>(
        UsToCycles(300 + rng_.NextBelow(700)),
        MsToCycles(5 + rng_.NextBelow(15))));
    machine_.CreateTask(params);
  }
  for (int i = 0; i < config_.yielders; ++i) {
    TaskParams params;
    params.name = "mix-yield-" + std::to_string(i);
    params.behavior = Adopt(std::make_unique<YielderBehavior>(
        UsToCycles(20 + rng_.NextBelow(130)), 30 + rng_.NextBelow(60)));
    machine_.CreateTask(params);
  }
  for (int i = 0; i < config_.interactive; ++i) {
    TaskParams params;
    params.name = "mix-inter-" + std::to_string(i);
    params.behavior = Adopt(std::make_unique<InteractiveBehavior>(
        UsToCycles(100 + rng_.NextBelow(300)),
        MsToCycles(1 + rng_.NextBelow(5)), 4 + rng_.NextBelow(8)));
    machine_.CreateTask(params);
  }
  for (int i = 0; i < config_.waiters; ++i) {
    const uint64_t wakes = 2 + rng_.NextBelow(3);
    auto behavior =
        std::make_unique<WaiterBehavior>(&queue_, wakes, UsToCycles(30));
    waiters_.push_back(WaiterSlot{behavior.get(), wakes});
    TaskParams params;
    params.name = "mix-wait-" + std::to_string(i);
    params.behavior = Adopt(std::move(behavior));
    machine_.CreateTask(params);
  }
  for (int i = 0; i < config_.forkers; ++i) {
    TaskParams params;
    params.name = "mix-fork-" + std::to_string(i);
    params.behavior =
        Adopt(std::make_unique<ChaosForker>(this, config_.forker_children));
    machine_.CreateTask(params);
  }
  for (int i = 0; i < config_.rt_tasks; ++i) {
    TaskParams params;
    params.name = "mix-rt-" + std::to_string(i);
    params.policy = kSchedRr;
    params.rt_priority = 5 + static_cast<long>(i);
    params.behavior = Adopt(std::make_unique<SpinnerBehavior>(
        UsToCycles(500), MsToCycles(2 + rng_.NextBelow(4))));
    machine_.CreateTask(params);
  }
  if (config_.waiters > 0) {
    machine_.engine().ScheduleAfter(config_.wake_period, [this] { WakePulse(); });
  }
}

void ChaosMixWorkload::WakePulse() {
  // Keep pulsing until every waiter has been dispatched its final wake.
  // (Spurious wakes from a fault plan can retire a waiter early; extra
  // WakeAll calls on an empty queue are harmless no-ops.)
  bool pending = false;
  for (const WaiterSlot& slot : waiters_) {
    if (slot.behavior->times_woken() < slot.wakes_needed) {
      pending = true;
      break;
    }
  }
  if (!pending) {
    return;
  }
  queue_.WakeAll(machine_);
  machine_.engine().ScheduleAfter(config_.wake_period, [this] { WakePulse(); });
}

bool ChaosMixWorkload::Done() const { return machine_.live_tasks() == 0; }

ChaosMixResult ChaosMixWorkload::Result() const {
  ChaosMixResult result;
  result.completed = machine_.live_tasks() == 0;
  result.tasks_spawned = machine_.stats().tasks_created;
  return result;
}

}  // namespace elsc
