#include "src/workloads/micro_behaviors.h"

#include <algorithm>

#include "src/smp/machine.h"

namespace elsc {

Cycles JitterCycles(Rng& rng, Cycles base, double fraction) {
  if (fraction <= 0.0 || base == 0) {
    return base;
  }
  const double factor = 1.0 + (rng.NextDouble() * 2.0 - 1.0) * fraction;
  const double value = static_cast<double>(base) * factor;
  return value < 1.0 ? 1 : static_cast<Cycles>(value);
}

Segment SpinnerBehavior::NextSegment(Machine& machine, Task& task) {
  (void)machine;
  (void)task;
  if (finite_) {
    if (remaining_ <= burst_) {
      const Cycles last = remaining_;
      remaining_ = 0;
      work_done_ += last;
      return Segment::Exit(last);
    }
    remaining_ -= burst_;
  }
  work_done_ += burst_;
  return Segment::RunAgain(burst_);
}

Segment YielderBehavior::NextSegment(Machine& machine, Task& task) {
  (void)machine;
  (void)task;
  if (remaining_ == 0) {
    return Segment::Exit(burst_);
  }
  --remaining_;
  ++yields_done_;
  return Segment::Yield(burst_);
}

Segment InteractiveBehavior::NextSegment(Machine& machine, Task& task) {
  (void)machine;
  (void)task;
  if (finite_ && remaining_ == 0) {
    return Segment::Exit(burst_);
  }
  if (finite_) {
    --remaining_;
  }
  ++iterations_done_;
  return Segment::Sleep(burst_, sleep_);
}

Segment FixedWorkBehavior::NextSegment(Machine& machine, Task& task) {
  (void)machine;
  (void)task;
  if (remaining_ <= burst_) {
    const Cycles last = remaining_;
    remaining_ = 0;
    finished_ = true;
    return Segment::Exit(std::max<Cycles>(last, 1));
  }
  remaining_ -= burst_;
  return Segment::RunAgain(burst_);
}

Segment WaiterBehavior::NextSegment(Machine& machine, Task& task) {
  (void)machine;
  (void)task;
  if (started_) {
    ++times_woken_;
    if (times_woken_ >= remaining_wakes_) {
      return Segment::Exit(burst_);
    }
  }
  started_ = true;
  return Segment::Block(burst_, queue_);
}

}  // namespace elsc
