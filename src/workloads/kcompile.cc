#include "src/workloads/kcompile.h"

#include "src/base/assert.h"
#include "src/base/string_util.h"
#include "src/net/socket_ops.h"
#include "src/workloads/micro_behaviors.h"

namespace elsc {

// The `make` process: serial parse, release workers, wait, serial link.
class KcompileMaster : public TaskBehavior {
 public:
  explicit KcompileMaster(KcompileWorkload* workload) : workload_(workload) {}

  Segment NextSegment(Machine& machine, Task& task) override {
    (void)task;
    const KcompileConfig& cfg = workload_->config();
    switch (phase_) {
      case Phase::kParse: {
        phase_ = Phase::kRelease;
        return Segment::RunAgain(cfg.serial_parse_cycles);
      }
      case Phase::kRelease: {
        for (int i = 0; i < cfg.jobs; ++i) {
          Message token;
          token.payload = static_cast<uint64_t>(i);
          const bool ok = workload_->start_gate_->TryWrite(machine, token);
          ELSC_CHECK_MSG(ok, "kcompile start gate overflow");
        }
        phase_ = Phase::kAwait;
        return Segment::RunAgain(UsToCycles(100));
      }
      case Phase::kAwait: {
        if (!workload_->done_signal_->TryRead(machine).has_value()) {
          return BlockUntilReadable(UsToCycles(20), *workload_->done_signal_);
        }
        phase_ = Phase::kLink;
        return Segment::RunAgain(UsToCycles(100));
      }
      case Phase::kLink: {
        return Segment::Exit(cfg.serial_link_cycles);
      }
    }
    __builtin_unreachable();
  }

  void OnExit(Machine& machine, Task& task) override {
    (void)task;
    workload_->build_finished_ = true;
    workload_->finish_time_sec_ = CyclesToSec(machine.Now());
  }

 private:
  enum class Phase { kParse, kRelease, kAwait, kLink };
  KcompileWorkload* workload_;
  Phase phase_ = Phase::kParse;
};

// One compiler invocation: its own forked process running read -> compile
// -> write, then exit; the pool slot is signalled through its done socket.
class KcompileJob : public TaskBehavior {
 public:
  KcompileJob(KcompileWorkload* workload, Rng rng, Cycles compile_cycles, int worker_slot)
      : workload_(workload), rng_(rng), compile_cycles_(compile_cycles), slot_(worker_slot) {}

  Segment NextSegment(Machine& machine, Task& task) override {
    (void)task;
    const KcompileConfig& cfg = workload_->config();
    switch (phase_) {
      case Phase::kReadIo: {
        phase_ = Phase::kCompile;
        return Segment::Sleep(cfg.io_cpu_cycles, JitterCycles(rng_, cfg.mean_read_wait, 0.5));
      }
      case Phase::kCompile: {
        phase_ = Phase::kWriteIo;
        return Segment::RunAgain(compile_cycles_);
      }
      case Phase::kWriteIo: {
        phase_ = Phase::kDone;
        return Segment::Sleep(cfg.io_cpu_cycles, JitterCycles(rng_, cfg.mean_write_wait, 0.5));
      }
      case Phase::kDone: {
        workload_->OnJobDone(machine, slot_);
        return Segment::Exit(UsToCycles(30));
      }
    }
    __builtin_unreachable();
  }

 private:
  enum class Phase { kReadIo, kCompile, kWriteIo, kDone };
  KcompileWorkload* workload_;
  Rng rng_;
  Cycles compile_cycles_;
  int slot_;
  Phase phase_ = Phase::kReadIo;
};

// One slot of the -j pool: pulls compile jobs, forks a cc child for each,
// and waits for the child to exit before taking the next job.
class KcompileWorker : public TaskBehavior {
 public:
  KcompileWorker(KcompileWorkload* workload, Rng rng, int slot)
      : workload_(workload), rng_(rng), slot_(slot) {}

  Segment NextSegment(Machine& machine, Task& task) override {
    const KcompileConfig& cfg = workload_->config();
    switch (phase_) {
      case Phase::kGate: {
        if (!workload_->start_gate_->TryRead(machine).has_value()) {
          return BlockUntilReadable(UsToCycles(20), *workload_->start_gate_);
        }
        phase_ = Phase::kFetch;
        return Segment::RunAgain(UsToCycles(50));
      }
      case Phase::kFetch: {
        const Cycles job_cycles = workload_->TakeJob();
        if (job_cycles == 0) {
          return Segment::Exit(UsToCycles(50));
        }
        // fork() + exec(cc): the child inherits half this slot's quantum.
        TaskBehavior* job = workload_->Adopt(
            std::make_unique<KcompileJob>(workload_, rng_.Fork(), job_cycles, slot_));
        TaskParams params;
        params.name = "cc-job";
        params.behavior = job;
        machine.ForkTask(&task, params);
        phase_ = Phase::kAwaitChild;
        return Segment::RunAgain(cfg.exec_overhead_cycles);
      }
      case Phase::kAwaitChild: {
        // wait(): park until the cc child signals its exit.
        SimSocket& done = *workload_->slot_done_[static_cast<size_t>(slot_)];
        if (!done.TryRead(machine).has_value()) {
          return BlockUntilReadable(UsToCycles(20), done);
        }
        phase_ = Phase::kFetch;
        return Segment::RunAgain(UsToCycles(40));
      }
    }
    __builtin_unreachable();
  }

 private:
  enum class Phase { kGate, kFetch, kAwaitChild };
  KcompileWorkload* workload_;
  Rng rng_;
  int slot_;
  Phase phase_ = Phase::kGate;
};

KcompileWorkload::KcompileWorkload(Machine& machine, const KcompileConfig& config)
    : machine_(machine), config_(config), rng_(machine.rng().Fork()) {
  ELSC_CHECK(config_.jobs >= 1);
  ELSC_CHECK(config_.total_compile_jobs >= 1);
}

KcompileWorkload::~KcompileWorkload() = default;

void KcompileWorkload::Setup() {
  make_mm_ = machine_.CreateMm();
  start_gate_ = std::make_unique<SimSocket>("make.gate", static_cast<size_t>(config_.jobs));
  done_signal_ = std::make_unique<SimSocket>("make.done", 4);

  auto master = std::make_unique<KcompileMaster>(this);
  TaskParams params;
  params.name = "make";
  params.mm = make_mm_;
  params.behavior = master.get();
  machine_.CreateTask(params);
  behaviors_.push_back(std::move(master));

  for (int i = 0; i < config_.jobs; ++i) {
    slot_done_.push_back(std::make_unique<SimSocket>(StrFormat("make.slot%d", i), 2));
    auto worker = std::make_unique<KcompileWorker>(this, rng_.Fork(), i);
    TaskParams wp;
    wp.name = StrFormat("slot-%d", i);
    wp.mm = make_mm_;  // The pool slots belong to make itself.
    wp.behavior = worker.get();
    machine_.CreateTask(wp);
    behaviors_.push_back(std::move(worker));
  }
}

Cycles KcompileWorkload::TakeJob() {
  if (jobs_taken_ >= config_.total_compile_jobs) {
    return 0;
  }
  ++jobs_taken_;
  return JitterCycles(rng_, config_.mean_compile_cycles, config_.compile_jitter);
}

void KcompileWorkload::OnJobDone(Machine& machine, int worker_slot) {
  ++jobs_done_;
  // Signal the slot's wait() before the child exits.
  Message token;
  const bool slot_ok =
      slot_done_[static_cast<size_t>(worker_slot)]->TryWrite(machine, token);
  ELSC_CHECK_MSG(slot_ok, "kcompile slot signal overflow");
  if (jobs_done_ == config_.total_compile_jobs) {
    const bool ok = done_signal_->TryWrite(machine, token);
    ELSC_CHECK_MSG(ok, "kcompile done signal overflow");
  }
}

TaskBehavior* KcompileWorkload::Adopt(std::unique_ptr<TaskBehavior> behavior) {
  behaviors_.push_back(std::move(behavior));
  return behaviors_.back().get();
}

bool KcompileWorkload::Done() const { return build_finished_ && machine_.live_tasks() == 0; }

KcompileResult KcompileWorkload::Result() const {
  KcompileResult result;
  result.completed = build_finished_;
  result.elapsed_sec = finish_time_sec_;
  result.jobs_compiled = static_cast<uint64_t>(jobs_done_);
  return result;
}

}  // namespace elsc
