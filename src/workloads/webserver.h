// Apache-style web-server workload — the paper's future-work question (§8):
// "Would we see the same performance gains we saw while running VolanoMark
// [on] a web server running Apache? Would ELSC be more effective in
// increasing throughput or decreasing latency?"
//
// Model: a prefork-style pool of worker processes blocked on a shared accept
// queue. Requests arrive by a Poisson process (an engine-driven generator
// writes them into the accept queue); a worker parses the request, sometimes
// waits on disk, produces the response, and goes back to accept. Each worker
// is its own process (own mm), matching Apache 1.3 prefork. Metrics:
// completed requests/second and response-latency percentiles.

#ifndef SRC_WORKLOADS_WEBSERVER_H_
#define SRC_WORKLOADS_WEBSERVER_H_

#include <cstdint>
#include <memory>
#include <vector>

#include "src/base/rng.h"
#include "src/net/socket.h"
#include "src/smp/machine.h"
#include "src/stats/histogram.h"

namespace elsc {

struct WebserverConfig {
  int workers = 150;                    // Apache prefork pool size.
  double arrival_rate_per_sec = 600.0;  // Poisson arrivals.
  Cycles duration = SecToCycles(20);    // Measurement window.
  Cycles parse_cycles = UsToCycles(150);
  Cycles respond_cycles = UsToCycles(500);
  double disk_probability = 0.25;       // Requests that miss the page cache.
  Cycles mean_disk_wait = MsToCycles(6);
  Cycles syscall_cycles = UsToCycles(5);
  double work_jitter = 0.4;
  size_t accept_queue_capacity = 1024;
  // Optional accept-queue read deadline (SO_RCVTIMEO analog): workers whose
  // accept blocks exceed it wake, re-check for shutdown, and block again
  // instead of sleeping forever. 0 (default) blocks forever — the historical
  // behavior, preserved so golden digests don't move.
  Cycles accept_timeout = 0;
};

struct WebserverResult {
  uint64_t requests_arrived = 0;
  uint64_t requests_completed = 0;
  uint64_t requests_dropped = 0;  // Accept queue overflow.
  double elapsed_sec = 0.0;
  double throughput = 0.0;        // Completed requests per second.
  double latency_mean_us = 0.0;
  uint64_t latency_p50_us = 0;
  uint64_t latency_p95_us = 0;
  uint64_t latency_p99_us = 0;
};

class WebserverWorkload {
 public:
  WebserverWorkload(Machine& machine, const WebserverConfig& config);
  ~WebserverWorkload();

  WebserverWorkload(const WebserverWorkload&) = delete;
  WebserverWorkload& operator=(const WebserverWorkload&) = delete;

  // Creates the worker pool and starts the arrival generator.
  void Setup();

  // True once the arrival window closed and every in-flight request drained
  // (workers then exit).
  bool Done() const;

  WebserverResult Result() const;

  const WebserverConfig& config() const { return config_; }

 private:
  friend class WebserverWorker;

  void ScheduleNextArrival();
  void OnRequestComplete(Cycles latency);

  Machine& machine_;
  WebserverConfig config_;
  Rng rng_;
  std::unique_ptr<SimSocket> accept_queue_;
  std::vector<std::unique_ptr<TaskBehavior>> behaviors_;
  Histogram latency_us_;
  uint64_t arrived_ = 0;
  uint64_t completed_ = 0;
  uint64_t dropped_ = 0;
  bool window_closed_ = false;
  Cycles window_end_ = 0;
};

}  // namespace elsc

#endif  // SRC_WORKLOADS_WEBSERVER_H_
