// Apache-style web-server workload — the paper's future-work question (§8):
// "Would we see the same performance gains we saw while running VolanoMark
// [on] a web server running Apache? Would ELSC be more effective in
// increasing throughput or decreasing latency?"
//
// Model: a prefork-style pool of worker processes blocked on a shared accept
// queue. Requests arrive by a Poisson process (an engine-driven generator
// writes them into the accept queue); a worker parses the request, sometimes
// waits on disk, produces the response, and goes back to accept. Each worker
// is its own process (own mm), matching Apache 1.3 prefork. Metrics:
// completed requests/second and response-latency percentiles.

#ifndef SRC_WORKLOADS_WEBSERVER_H_
#define SRC_WORKLOADS_WEBSERVER_H_

#include <cstdint>
#include <memory>
#include <string>
#include <vector>

#include "src/base/rng.h"
#include "src/net/backoff.h"
#include "src/net/socket.h"
#include "src/smp/machine.h"
#include "src/stats/histogram.h"

namespace elsc {

struct WebserverConfig {
  int workers = 150;                    // Apache prefork pool size.
  double arrival_rate_per_sec = 600.0;  // Poisson arrivals.
  Cycles duration = SecToCycles(20);    // Measurement window.
  Cycles parse_cycles = UsToCycles(150);
  Cycles respond_cycles = UsToCycles(500);
  double disk_probability = 0.25;       // Requests that miss the page cache.
  Cycles mean_disk_wait = MsToCycles(6);
  Cycles syscall_cycles = UsToCycles(5);
  double work_jitter = 0.4;
  size_t accept_queue_capacity = 1024;
  // Optional accept-queue read deadline (SO_RCVTIMEO analog): workers whose
  // accept blocks exceed it wake, re-check for shutdown, and block again
  // instead of sleeping forever. 0 (default) blocks forever — the historical
  // behavior, preserved so golden digests don't move.
  Cycles accept_timeout = 0;

  // -- Overload-resilience knobs (all default off = historical behavior) --

  // Admission control: when nonzero, a worker sheds any accepted request
  // whose queueing delay (accept time − arrival time) already exceeds this
  // deadline — the request would miss its SLO anyway, so spending CPU on it
  // only steals capacity from requests that can still make it. Shed requests
  // count as dropped (cause: deadline).
  Cycles shed_deadline = 0;

  // Resilient clients: when true, an arrival that cannot enter the accept
  // queue (backlog full, or the listener was reset) retries with bounded
  // exponential backoff + deterministic jitter instead of being dropped on
  // the spot; after backoff.max_retries failed attempts the client abandons
  // (counted, and folded into the per-cause drop totals).
  bool retry_arrivals = false;
  BackoffPolicy backoff;
};

struct WebserverResult {
  uint64_t requests_arrived = 0;
  uint64_t requests_completed = 0;
  // Total drops; always dropped_backlog + dropped_shed + dropped_reset, so
  // requests_completed == requests_arrived − requests_dropped still holds.
  uint64_t requests_dropped = 0;
  uint64_t dropped_backlog = 0;  // Accept-queue overflow (incl. abandons).
  uint64_t dropped_shed = 0;     // Admission control: deadline already blown.
  uint64_t dropped_reset = 0;    // Connection reset (failed write or queue teardown).
  uint64_t retries = 0;          // Backoff retry attempts by arrivals.
  uint64_t abandons = 0;         // Arrivals that gave up after max retries.
  double elapsed_sec = 0.0;
  double throughput = 0.0;        // Completed (goodput) requests per second.
  double latency_mean_us = 0.0;
  uint64_t latency_p50_us = 0;
  uint64_t latency_p95_us = 0;
  uint64_t latency_p99_us = 0;
  uint64_t latency_p999_us = 0;
};

// Proc-style `key: value` report of a webserver run: goodput, the per-cause
// drop breakdown, retry/abandon counters, and the latency tail through
// p99.9. Resilience lines (drop causes, retries) appear only when nonzero,
// so classic runs render exactly as before the overload layer existed.
std::string RenderWebserverReport(const WebserverResult& result);

class WebserverWorkload {
 public:
  WebserverWorkload(Machine& machine, const WebserverConfig& config);
  ~WebserverWorkload();

  WebserverWorkload(const WebserverWorkload&) = delete;
  WebserverWorkload& operator=(const WebserverWorkload&) = delete;

  // Creates the worker pool and starts the arrival generator.
  void Setup();

  // True once the arrival window closed and every in-flight request drained
  // (workers then exit).
  bool Done() const;

  WebserverResult Result() const;

  const WebserverConfig& config() const { return config_; }

  // Latency samples in µs; exposed so the overload sweep can Merge() shards
  // and take tail percentiles itself.
  const Histogram& latency_histogram() const { return latency_us_; }

  // Sockets the connection-lifecycle fault injectors may victimize (the
  // accept queue — the server's listener). See
  // FaultInjector::AttachLifecycleTargets.
  std::vector<SimSocket*> LifecycleTargets() { return {accept_queue_.get()}; }

  const SocketStats& accept_queue_stats() const { return accept_queue_->stats(); }

  // Sockets this workload owns (just the accept queue — requests ride it);
  // feeds the memory high-water block of RunStats.
  uint64_t SocketCount() const { return accept_queue_ ? 1 : 0; }

 private:
  friend class WebserverWorker;

  void ScheduleNextArrival();
  // Attempts to enqueue `request`; on failure either drops by cause or, with
  // retry_arrivals, schedules a jittered backoff retry. `attempt` is 0 for
  // the initial submission.
  void SubmitRequest(const Message& request, int attempt);
  void OnRequestComplete(Cycles latency);
  void OnRequestShed();
  // Called by a worker that observed the accept queue dead (reset or EOF)
  // mid-window: the server re-listens.
  void ReopenAcceptQueue();

  Machine& machine_;
  WebserverConfig config_;
  Rng rng_;
  std::unique_ptr<SimSocket> accept_queue_;
  std::vector<std::unique_ptr<TaskBehavior>> behaviors_;
  Histogram latency_us_;
  uint64_t arrived_ = 0;
  uint64_t completed_ = 0;
  uint64_t dropped_backlog_ = 0;
  uint64_t dropped_shed_ = 0;
  uint64_t dropped_conn_ = 0;  // Writes refused by a closed/reset listener.
  uint64_t retries_ = 0;
  uint64_t abandons_ = 0;
  uint64_t pending_retries_ = 0;  // Backoff timers in flight (blocks Done()).
  bool window_closed_ = false;
  Cycles window_end_ = 0;
};

}  // namespace elsc

#endif  // SRC_WORKLOADS_WEBSERVER_H_
