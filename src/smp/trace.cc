#include "src/smp/trace.h"

#include "src/base/string_util.h"

namespace elsc {

const char* TraceEventTypeName(TraceEventType type) {
  switch (type) {
    case TraceEventType::kDispatch:
      return "dispatch";
    case TraceEventType::kPreempt:
      return "preempt";
    case TraceEventType::kBlock:
      return "block";
    case TraceEventType::kSleep:
      return "sleep";
    case TraceEventType::kYield:
      return "yield";
    case TraceEventType::kWake:
      return "wake";
    case TraceEventType::kExit:
      return "exit";
    case TraceEventType::kIdle:
      return "idle";
  }
  return "?";
}

std::string TraceRecorder::Render() const {
  std::string out;
  for (size_t i = 0; i < size(); ++i) {
    const TraceEvent& ev = event(i);
    out += StrFormat("t=%llu %s cpu%d pid%d\n", static_cast<unsigned long long>(ev.when),
                     TraceEventTypeName(ev.type), ev.cpu, ev.pid);
  }
  return out;
}

}  // namespace elsc
