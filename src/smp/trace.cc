#include "src/smp/trace.h"

#include "src/base/string_util.h"

namespace elsc {

const char* TraceEventTypeName(TraceEventType type) {
  switch (type) {
    case TraceEventType::kDispatch:
      return "dispatch";
    case TraceEventType::kPreempt:
      return "preempt";
    case TraceEventType::kBlock:
      return "block";
    case TraceEventType::kSleep:
      return "sleep";
    case TraceEventType::kYield:
      return "yield";
    case TraceEventType::kWake:
      return "wake";
    case TraceEventType::kExit:
      return "exit";
    case TraceEventType::kIdle:
      return "idle";
  }
  return "?";
}

void TraceRecorder::Record(Cycles when, TraceEventType type, int cpu, int pid) {
  if (!enabled_) {
    return;
  }
  ++total_;
  if (events_.size() == capacity_) {
    events_.pop_front();
    ++dropped_;
  }
  events_.push_back(TraceEvent{when, type, cpu, pid});
}

std::string TraceRecorder::Render() const {
  std::string out;
  for (const TraceEvent& event : events_) {
    out += StrFormat("t=%llu %s cpu%d pid%d\n", static_cast<unsigned long long>(event.when),
                     TraceEventTypeName(event.type), event.cpu, event.pid);
  }
  return out;
}

}  // namespace elsc
