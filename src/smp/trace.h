// Event trace recorder: a bounded in-memory timeline of scheduling events
// (dispatches, blocks, wakes, preemptions, yields, exits, idles), in the
// spirit of the instrumentation the paper exposed through /proc — but as a
// per-event record rather than aggregate counters. Useful for debugging
// behaviors and for the trace-based tests.

#ifndef SRC_SMP_TRACE_H_
#define SRC_SMP_TRACE_H_

#include <cstddef>
#include <cstdint>
#include <string>
#include <vector>

#include "src/base/assert.h"
#include "src/base/time_units.h"

namespace elsc {

enum class TraceEventType {
  kDispatch,   // Task placed on a CPU.
  kPreempt,    // Running task forced back to the run queue.
  kBlock,      // Task went to sleep on a wait queue.
  kSleep,      // Task went to sleep on a timer.
  kYield,      // sys_sched_yield().
  kWake,       // Task became runnable.
  kExit,       // Task terminated.
  kIdle,       // CPU went idle.
};

const char* TraceEventTypeName(TraceEventType type);

struct TraceEvent {
  Cycles when = 0;
  TraceEventType type = TraceEventType::kDispatch;
  int cpu = -1;  // -1 when not CPU-bound (e.g. cross-CPU wake).
  int pid = 0;
};

// Fixed-capacity ring: Enable() preallocates the whole buffer once, and
// recording is an inline bounds-free store + index wrap — no allocation and
// no deque node churn on the dispatch hot path. When the ring is full the
// oldest record is overwritten and the drop counter advances; consumers must
// treat the trace as a *suffix* of the run (check dropped() before assuming
// lossless capture — see docs/PERF.md).
class TraceRecorder {
 public:
  // Disabled (capacity 0) by default; Enable() turns recording on with a
  // bounded ring (oldest events are dropped).
  void Enable(size_t capacity) {
    capacity_ = capacity;
    enabled_ = capacity > 0;
    ring_.assign(capacity, TraceEvent{});
    start_ = 0;
    size_ = 0;
    total_ = 0;
    dropped_ = 0;
  }
  bool enabled() const { return enabled_; }
  size_t capacity() const { return capacity_; }

  void Record(Cycles when, TraceEventType type, int cpu, int pid) {
    if (!enabled_) {
      return;
    }
    ++total_;
    size_t slot;
    if (size_ == capacity_) {
      // Full: overwrite the oldest record.
      slot = start_;
      start_ = Next(start_);
      ++dropped_;
    } else {
      slot = Wrap(start_ + size_);
      ++size_;
    }
    ring_[slot] = TraceEvent{when, type, cpu, pid};
  }

  size_t size() const { return size_; }
  uint64_t total_recorded() const { return total_; }
  uint64_t dropped() const { return dropped_; }
  // True iff every recorded event is still in the ring.
  bool lossless() const { return dropped_ == 0; }

  // i-th retained event, oldest first (0 <= i < size()).
  const TraceEvent& event(size_t i) const {
    ELSC_CHECK(i < size_);
    return ring_[Wrap(start_ + i)];
  }
  const TraceEvent& front() const { return event(0); }
  const TraceEvent& back() const { return event(size_ - 1); }

  // Renders "t=<cycles> <type> cpu<k> pid<p>" lines.
  std::string Render() const;

  void Clear() {
    start_ = 0;
    size_ = 0;
    total_ = 0;
    dropped_ = 0;
  }

 private:
  size_t Next(size_t i) const { return i + 1 == capacity_ ? 0 : i + 1; }
  size_t Wrap(size_t i) const { return i >= capacity_ ? i - capacity_ : i; }

  bool enabled_ = false;
  size_t capacity_ = 0;
  std::vector<TraceEvent> ring_;
  size_t start_ = 0;   // Index of the oldest retained event.
  size_t size_ = 0;    // Retained events (<= capacity_).
  uint64_t total_ = 0;
  uint64_t dropped_ = 0;
};

}  // namespace elsc

#endif  // SRC_SMP_TRACE_H_
