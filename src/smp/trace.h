// Event trace recorder: a bounded in-memory timeline of scheduling events
// (dispatches, blocks, wakes, preemptions, yields, exits, idles), in the
// spirit of the instrumentation the paper exposed through /proc — but as a
// per-event record rather than aggregate counters. Useful for debugging
// behaviors and for the trace-based tests.

#ifndef SRC_SMP_TRACE_H_
#define SRC_SMP_TRACE_H_

#include <cstdint>
#include <deque>
#include <string>

#include "src/base/time_units.h"

namespace elsc {

enum class TraceEventType {
  kDispatch,   // Task placed on a CPU.
  kPreempt,    // Running task forced back to the run queue.
  kBlock,      // Task went to sleep on a wait queue.
  kSleep,      // Task went to sleep on a timer.
  kYield,      // sys_sched_yield().
  kWake,       // Task became runnable.
  kExit,       // Task terminated.
  kIdle,       // CPU went idle.
};

const char* TraceEventTypeName(TraceEventType type);

struct TraceEvent {
  Cycles when = 0;
  TraceEventType type = TraceEventType::kDispatch;
  int cpu = -1;  // -1 when not CPU-bound (e.g. cross-CPU wake).
  int pid = 0;
};

class TraceRecorder {
 public:
  // Disabled (capacity 0) by default; Enable() turns recording on with a
  // bounded ring (oldest events are dropped).
  void Enable(size_t capacity) {
    capacity_ = capacity;
    enabled_ = capacity > 0;
  }
  bool enabled() const { return enabled_; }

  void Record(Cycles when, TraceEventType type, int cpu, int pid);

  size_t size() const { return events_.size(); }
  uint64_t total_recorded() const { return total_; }
  uint64_t dropped() const { return dropped_; }
  const std::deque<TraceEvent>& events() const { return events_; }

  // Renders "t=<cycles> <type> cpu<k> pid<p>" lines.
  std::string Render() const;

  void Clear() {
    events_.clear();
    total_ = 0;
    dropped_ = 0;
  }

 private:
  bool enabled_ = false;
  size_t capacity_ = 0;
  std::deque<TraceEvent> events_;
  uint64_t total_ = 0;
  uint64_t dropped_ = 0;
};

}  // namespace elsc

#endif  // SRC_SMP_TRACE_H_
