#include "src/smp/machine.h"

#include <algorithm>

#include "src/base/assert.h"
#include "src/base/log.h"

namespace elsc {

Machine::Machine(const MachineConfig& config)
    : config_(config), rng_(config.seed) {
  ELSC_CHECK(config_.num_cpus >= 1);
  ELSC_CHECK_MSG(config_.smp || config_.num_cpus == 1, "UP build requires exactly one CPU");
  SchedulerConfig sched_config{config_.num_cpus, config_.smp};
  if (config_.scheduler_factory) {
    scheduler_ = config_.scheduler_factory(config_.cost_model, &task_list_, sched_config);
    ELSC_CHECK_MSG(scheduler_ != nullptr, "scheduler_factory returned null");
  } else {
    scheduler_ = MakeScheduler(config_.scheduler, config_.cost_model, &task_list_, sched_config,
                               config_.elsc);
  }
  cpus_.reserve(static_cast<size_t>(config_.num_cpus));
  cpu_locks_.resize(static_cast<size_t>(config_.num_cpus));
  idle_cpus_.Reset(config_.num_cpus);
  for (int i = 0; i < config_.num_cpus; ++i) {
    auto cpu = std::make_unique<Cpu>();
    cpu->id = i;
    cpus_.push_back(std::move(cpu));
    idle_cpus_.Set(i);  // Fresh CPUs are idle and available.
  }
}

Machine::~Machine() = default;

MmStruct* Machine::CreateMm() {
  mms_.push_back(std::make_unique<MmStruct>(MmStruct{next_mm_id_++}));
  return mms_.back().get();
}

Task* Machine::CreateTask(const TaskParams& params) {
  ELSC_CHECK(params.priority >= kMinPriority && params.priority <= kMaxPriority);
  ELSC_CHECK(params.rt_priority >= 0 && params.rt_priority <= kMaxRtPriority);
  Task* task = task_arena_.Allocate();
  task->registry_slot = static_cast<int>(tasks_.size());
  tasks_.push_back(task);

  task->pid = pids_.Next();
  task->name = params.name.empty() ? "task-" + std::to_string(task->pid) : params.name;
  task->mm = params.mm != nullptr ? params.mm : CreateMm();
  task->priority = params.priority;
  task->policy = params.policy;
  task->rt_priority = params.rt_priority;
  task->counter = params.initial_counter >= 0 ? params.initial_counter : params.priority;
  task->behavior = params.behavior;
  task->state = TaskState::kRunning;
  // Spread fresh tasks across CPUs so the initial affinity is balanced (the
  // kernel sets this to the forking CPU; workload setup achieves the same
  // spread by creating tasks from many CPUs). ForkTask passes the parent's
  // CPU explicitly.
  task->processor =
      params.processor >= 0 && params.processor < num_cpus()
          ? params.processor
          : static_cast<int>(stats_.tasks_created % static_cast<uint64_t>(num_cpus()));
  task->became_runnable_at = Now();

  task_list_.Add(task);
  ++live_tasks_;
  ++stats_.tasks_created;
  if (live_tasks_ > stats_.peak_live_tasks) {
    stats_.peak_live_tasks = live_tasks_;
  }

  scheduler_->AddToRunQueue(task);
  CheckInvariantsIfEnabled();
  RescheduleIdle(task);
  return task;
}

void Machine::Start() {
  ELSC_CHECK_MSG(!started_, "Machine::Start() called twice");
  started_ = true;
  engine_.ScheduleAfter(kTickCycles, [this] { OnTimerTick(); });
  for (int i = 0; i < num_cpus(); ++i) {
    Cpu& c = *cpus_[static_cast<size_t>(i)];
    if (c.current == nullptr && !c.schedule_pending) {
      RequestSchedule(i);
    }
  }
}

void Machine::RunFor(Cycles duration) { engine_.RunUntil(Now() + duration); }

bool Machine::RunUntil(const std::function<bool()>& predicate, Cycles deadline) {
  engine_.RunUntilCondition(predicate, Now() + deadline);
  return predicate();
}

bool Machine::RunUntilAllExited(Cycles deadline) {
  return RunUntil([this] { return live_tasks_ == 0; }, deadline);
}

// ---------------------------------------------------------------------------
// schedule() path
// ---------------------------------------------------------------------------

void Machine::RequestSchedule(int cpu_id) {
  Cpu& c = *cpus_[static_cast<size_t>(cpu_id)];
  if (c.stalled) {
    c.need_resched = true;  // Re-examined when the CPU rejoins.
    return;
  }
  if (c.schedule_pending) {
    return;
  }
  ELSC_CHECK_MSG(c.segment_event == 0, "schedule requested with a live segment");
  c.schedule_pending = true;
  UpdateIdleMask(cpu_id);
  c.schedule_requested_at = Now();
  if (!scheduler_->uses_global_lock()) {
    // Per-CPU-queue schedulers serialize on their own CPU's run-queue lock
    // instead of the global runqueue_lock.
    AcquireCpuLock(cpu_id);
    return;
  }
  lock_waiters_.push_back(cpu_id);
  TryGrantLock();
}

void Machine::AcquireCpuLock(int cpu_id) {
  CpuLockStats& lock = cpu_locks_[static_cast<size_t>(cpu_id)];
  if (lock.held_until > Now()) {
    // A migrating pick on another CPU holds this CPU's lock: spin until the
    // holder's release time, then retry. The spin time lands in
    // DoSchedule()'s lock_wait (Now() - schedule_requested_at).
    ++lock.contended;
    ++scheduler_->mutable_stats().percpu_lock_contended;
    engine_.ScheduleAfter(lock.held_until - Now(), [this, cpu_id] { AcquireCpuLock(cpu_id); });
    return;
  }
  DoSchedule(cpu_id);
}

void Machine::TryGrantLock() {
  if (lock_held_ || lock_waiters_.empty()) {
    return;
  }
  lock_held_ = true;
  const int cpu_id = lock_waiters_.front();
  lock_waiters_.pop_front();
  DoSchedule(cpu_id);
}

void Machine::DoSchedule(int cpu_id) {
  Cpu& c = *cpus_[static_cast<size_t>(cpu_id)];
  Task* prev = c.current;

  // Time spent spinning on the run-queue lock before the pick could begin.
  const Cycles lock_wait = Now() - c.schedule_requested_at;
  scheduler_->mutable_stats().lock_wait_cycles += lock_wait;
  c.stats.sched_cycles += lock_wait;

  CostMeter meter(config_.cost_model);
  Task* next = scheduler_->Schedule(cpu_id, prev, meter);
  CheckInvariantsIfEnabled();
  if (pick_observer_) {
    pick_observer_(cpu_id, prev, next);
  }

  // Claim the pick immediately: between here and the dispatch event another
  // CPU may run its own schedule() (always possible for per-CPU-queue
  // schedulers; the global lock otherwise serializes pick+dispatch), and it
  // must not select the same task. The kernel equivalent is taking the task
  // before dropping the lock.
  if (next != nullptr) {
    next->has_cpu = 1;
  }

  Cycles pick_cost = meter.cycles();
  if (pending_lock_stall_ > 0 && scheduler_->uses_global_lock()) {
    // Lock-holder preemption spike: this pick holds the run-queue lock
    // longer, so every waiter behind it eats the delay too.
    pick_cost += pending_lock_stall_;
    stats_.lock_stall_cycles += pending_lock_stall_;
    pending_lock_stall_ = 0;
  }
  if (!scheduler_->uses_global_lock()) {
    SchedStats& ss = scheduler_->mutable_stats();
    CpuLockStats& own = cpu_locks_[static_cast<size_t>(cpu_id)];
    ++own.acquisitions;
    own.wait_cycles += lock_wait;
    ++ss.percpu_lock_acquisitions;
    ss.percpu_lock_wait_cycles += lock_wait;

    // Migration double-lock: the pick also took the source CPUs' locks,
    // acquired in ascending CPU index (the deadlock-avoidance order every
    // per-CPU-queue scheduler must follow). If a remote lock is still held
    // by an in-flight pick, this pick spins for the residue — the wait is
    // serial with the pick, so it lands in pick_cost.
    if (!meter.remote_locks().empty()) {
      std::vector<int> remotes = meter.remote_locks();
      std::sort(remotes.begin(), remotes.end());
      remotes.erase(std::unique(remotes.begin(), remotes.end()), remotes.end());
      Cycles remote_wait = 0;
      for (int r : remotes) {
        ELSC_CHECK(r >= 0 && r < num_cpus() && r != cpu_id);
        CpuLockStats& rl = cpu_locks_[static_cast<size_t>(r)];
        ++rl.remote_acquisitions;
        ++ss.double_locks;
        if (rl.held_until > Now()) {
          ++rl.contended;
          ++ss.percpu_lock_contended;
          const Cycles residue = rl.held_until - Now();
          rl.wait_cycles += residue;
          remote_wait = std::max(remote_wait, residue);
        }
      }
      if (remote_wait > 0) {
        pick_cost += remote_wait;
        ss.lock_wait_cycles += remote_wait;
        ss.percpu_lock_wait_cycles += remote_wait;
      }
      // Every remote lock stays held to the end of this pick.
      const Cycles release_at = Now() + pick_cost;
      for (int r : remotes) {
        CpuLockStats& rl = cpu_locks_[static_cast<size_t>(r)];
        const Cycles start = std::max(rl.held_until, Now());
        if (release_at > start) {
          rl.hold_cycles += release_at - start;
          ss.percpu_lock_hold_cycles += release_at - start;
          rl.held_until = release_at;
        }
      }
    }
    // Own lock held for the pick's duration.
    own.held_until = Now() + pick_cost;
    own.hold_cycles += pick_cost;
    ss.percpu_lock_hold_cycles += pick_cost;
  }
  engine_.ScheduleAfter(pick_cost,
                        [this, cpu_id, next, pick_cost] { FinishSchedule(cpu_id, next, pick_cost); });
}

void Machine::FinishSchedule(int cpu_id, Task* next, Cycles pick_cost) {
  Cpu& c = *cpus_[static_cast<size_t>(cpu_id)];
  c.stats.sched_cycles += pick_cost;
  const bool global_lock = scheduler_->uses_global_lock();
  if (global_lock) {
    lock_held_ = false;
  }
  c.schedule_pending = false;
  Dispatch(cpu_id, next);
  UpdateIdleMask(cpu_id);
  // A wakeup may have arrived while this schedule() was in flight. The
  // running case is handled when the segment is installed; the idle case
  // must re-enter schedule() here or the wake would be lost.
  if (c.current == nullptr && c.need_resched) {
    c.need_resched = false;
    RequestSchedule(cpu_id);
  }
  if (global_lock) {
    TryGrantLock();
  }
}

void Machine::Dispatch(int cpu_id, Task* next) {
  Cpu& c = *cpus_[static_cast<size_t>(cpu_id)];
  Task* prev = c.current;

  if (prev != nullptr && prev == next) {
    // The scheduler re-picked the current task: no context switch.
    trace_.Record(Now(), TraceEventType::kDispatch, cpu_id, next->pid);
    InstallSegment(cpu_id, 0);
    return;
  }

  if (prev != nullptr) {
    prev->has_cpu = 0;
    if (prev->state == TaskState::kRunning) {
      prev->became_runnable_at = Now();
    }
  }

  if (next == nullptr) {
    if (prev != nullptr) {
      c.current = nullptr;
      c.idle_since = Now();
      ++c.stats.idle_periods;
      trace_.Record(Now(), TraceEventType::kIdle, cpu_id, 0);
      MaybeRecycleTask(prev);
    }
    return;
  }

  if (prev == nullptr) {
    // Leaving idle.
    c.stats.idle_cycles += Now() - c.idle_since;
  }

  Cycles overhead = config_.cost_model.context_switch;
  if (prev != nullptr && prev->mm != next->mm) {
    overhead += config_.cost_model.mm_switch;
  }
  if (config_.smp && next->processor != cpu_id) {
    // Cold caches on the new CPU: the task's first stretch of work runs
    // slower; modeled as a lump warm-up cost.
    overhead += config_.cost_model.cache_migration_penalty;
    ++next->stats.migrations;
    ++stats_.migrations;
  }

  next->has_cpu = 1;
  next->processor = cpu_id;
  ++next->stats.times_scheduled;
  if (next->became_runnable_at <= Now()) {
    next->stats.wait_cycles += Now() - next->became_runnable_at;
  }

  c.current = next;
  ++c.stats.dispatches;
  ++c.stats.context_switches;
  ++stats_.context_switches;

  if (LogEnabled(LogLevel::kTrace)) {
    ELSC_LOG_TRACE("[%llu] cpu%d dispatch %s (pid %d, counter %ld)",
                   static_cast<unsigned long long>(Now()), cpu_id, next->name.c_str(), next->pid,
                   next->counter);
  }
  trace_.Record(Now(), TraceEventType::kDispatch, cpu_id, next->pid);

  InstallSegment(cpu_id, overhead);
  if (prev != nullptr) {
    MaybeRecycleTask(prev);
  }
}

// ---------------------------------------------------------------------------
// Segment execution
// ---------------------------------------------------------------------------

Segment Machine::FetchSegment(Task* task) {
  ELSC_CHECK_MSG(task->behavior != nullptr, "task has no behavior to run");
  Segment seg = task->behavior->NextSegment(*this, *task);
  if (seg.after == SegmentAfter::kBlock) {
    ELSC_CHECK_MSG(seg.wait_on != nullptr, "kBlock segment without a wait queue");
  }
  if (seg.after == SegmentAfter::kRunAgain) {
    ELSC_CHECK_MSG(seg.cycles > 0, "kRunAgain segment must make progress");
  }
  return seg;
}

void Machine::InstallSegment(int cpu_id, Cycles overhead) {
  Cpu& c = *cpus_[static_cast<size_t>(cpu_id)];
  if (c.stalled) {
    return;  // Parked; ResumeCpu() re-installs the segment at rejoin.
  }
  Task* task = c.current;
  ELSC_CHECK(task != nullptr);

  if (!task->segment_active) {
    Segment seg = FetchSegment(task);
    task->segment_remaining = seg.cycles;
    task->pending_after = static_cast<int>(seg.after);
    task->pending_wait = seg.wait_on;
    task->pending_sleep = seg.sleep_for;
    task->pending_block_timeout = seg.block_timeout;
    task->pending_block_check = std::move(seg.still_blocked);
    task->segment_active = true;
  }

  c.segment_started_at = Now();
  c.segment_overhead = overhead;
  c.segment_useful = task->segment_remaining;
  const uint64_t generation = ++c.dispatch_generation;
  c.segment_event = engine_.ScheduleAfter(
      overhead + task->segment_remaining, [this, cpu_id, generation] { OnSegmentEnd(cpu_id, generation); });

  if (c.need_resched) {
    // A wakeup during the behavior callback decided to preempt this CPU.
    c.need_resched = false;
    PreemptCpu(cpu_id);
  }
}

void Machine::StopSegment(int cpu_id) {
  Cpu& c = *cpus_[static_cast<size_t>(cpu_id)];
  if (c.segment_event == 0) {
    return;
  }
  engine_.Cancel(c.segment_event);
  c.segment_event = 0;

  Task* task = c.current;
  ELSC_CHECK(task != nullptr);
  const Cycles elapsed = Now() - c.segment_started_at;
  c.stats.busy_cycles += elapsed;
  Cycles useful = elapsed > c.segment_overhead ? elapsed - c.segment_overhead : 0;
  useful = std::min(useful, task->segment_remaining);
  task->segment_remaining -= useful;
  task->stats.cpu_cycles += useful;
  // The segment stays active; the task resumes the remainder when next
  // dispatched.
}

void Machine::OnSegmentEnd(int cpu_id, uint64_t generation) {
  Cpu& c = *cpus_[static_cast<size_t>(cpu_id)];
  if (generation != c.dispatch_generation || c.segment_event == 0) {
    return;  // Stale event (the segment was preempted/cancelled).
  }
  c.segment_event = 0;

  Task* task = c.current;
  ELSC_CHECK(task != nullptr);
  const Cycles elapsed = Now() - c.segment_started_at;
  c.stats.busy_cycles += elapsed;
  task->stats.cpu_cycles += c.segment_useful;
  task->segment_active = false;
  task->segment_remaining = 0;

  switch (static_cast<SegmentAfter>(task->pending_after)) {
    case SegmentAfter::kBlock: {
      // Re-check the wait condition at the moment we would sleep (the
      // kernel's add_wait_queue / re-test / schedule() idiom): if it was
      // satisfied while this segment was finishing, skip the sleep — the
      // task stays runnable and retries after its next dispatch.
      if (task->pending_block_check && !task->pending_block_check()) {
        task->pending_block_check = nullptr;
        RequestSchedule(cpu_id);
        break;
      }
      task->pending_block_check = nullptr;
      task->state = TaskState::kInterruptible;
      task->block_timed_out = false;
      const uint64_t sleep_generation = ++task->sleep_generation;
      ++task->stats.voluntary_switches;
      task->pending_wait->Enqueue(task);
      if (task->pending_block_timeout > 0) {
        // Timed block (SO_RCVTIMEO/SO_SNDTIMEO analog): a deadline event
        // wakes the task with block_timed_out set unless a regular wake-up
        // got there first. The generation check makes a stale deadline inert
        // once the task has moved on to a later block or sleep; the
        // pending-wake count keeps the arena from recycling the slot.
        Task* blocked = task;
        ++blocked->pending_timer_wakes;
        engine_.ScheduleAfter(
            task->pending_block_timeout, [this, blocked, sleep_generation] {
              --blocked->pending_timer_wakes;
              if (blocked->state == TaskState::kInterruptible &&
                  blocked->sleep_generation == sleep_generation) {
                blocked->block_timed_out = true;
                WakeUpProcess(blocked);
              }
              MaybeRecycleTask(blocked);
            });
      }
      trace_.Record(Now(), TraceEventType::kBlock, cpu_id, task->pid);
      RequestSchedule(cpu_id);
      break;
    }
    case SegmentAfter::kSleep: {
      task->state = TaskState::kInterruptible;
      ++task->sleep_generation;  // Invalidates any stale block deadline.
      ++task->stats.voluntary_switches;
      // Timer-driven wake; WakeUpProcess() tolerates the task having been
      // woken earlier (or having exited) by then. The pending-wake count
      // keeps the arena from recycling a zombie this event still points at.
      Task* sleeper = task;
      ++sleeper->pending_timer_wakes;
      engine_.ScheduleAfter(task->pending_sleep, [this, sleeper] {
        --sleeper->pending_timer_wakes;
        WakeUpProcess(sleeper);
        MaybeRecycleTask(sleeper);
      });
      trace_.Record(Now(), TraceEventType::kSleep, cpu_id, task->pid);
      RequestSchedule(cpu_id);
      break;
    }
    case SegmentAfter::kYield: {
      ++task->stats.yields;
      // sys_sched_yield(): flag the task and move it to the back of the run
      // queue so equal-goodness peers win the tie.
      if (PolicyBase(task->policy) == kSchedOther) {
        task->policy |= kSchedYield;
      }
      if (task->OnRunQueue()) {
        scheduler_->MoveLastRunQueue(task);
      }
      trace_.Record(Now(), TraceEventType::kYield, cpu_id, task->pid);
      RequestSchedule(cpu_id);
      break;
    }
    case SegmentAfter::kExit: {
      ExitTask(cpu_id, task);
      RequestSchedule(cpu_id);
      break;
    }
    case SegmentAfter::kRunAgain: {
      InstallSegment(cpu_id, 0);
      break;
    }
  }
}

void Machine::ExitTask(int cpu_id, Task* task) {
  task->state = TaskState::kZombie;
  ++task->stats.voluntary_switches;
  if (LogEnabled(LogLevel::kTrace)) {
    ELSC_LOG_TRACE("[%llu] exit %s (pid %d) after %.3f ms cpu",
                   static_cast<unsigned long long>(Now()), task->name.c_str(), task->pid,
                   CyclesToMs(task->stats.cpu_cycles));
  }
  trace_.Record(Now(), TraceEventType::kExit, cpu_id, task->pid);
  task_list_.Remove(task);
  ELSC_CHECK(live_tasks_ > 0);
  --live_tasks_;
  ++stats_.tasks_exited;
  if (task->behavior != nullptr) {
    task->behavior->OnExit(*this, *task);
  }
}

// ---------------------------------------------------------------------------
// Preemption & wakeups
// ---------------------------------------------------------------------------

void Machine::PreemptCpu(int cpu_id) {
  Cpu& c = *cpus_[static_cast<size_t>(cpu_id)];
  if (c.stalled) {
    c.need_resched = true;  // Honored when the CPU rejoins.
    return;
  }
  if (c.schedule_pending) {
    return;  // Already on its way into schedule().
  }
  if (c.current == nullptr) {
    RequestSchedule(cpu_id);
    return;
  }
  if (c.segment_event == 0) {
    // Mid-callback (behavior running): honor once the segment is installed.
    c.need_resched = true;
    return;
  }
  StopSegment(cpu_id);
  ++c.current->stats.preemptions;
  trace_.Record(Now(), TraceEventType::kPreempt, cpu_id, c.current->pid);
  RequestSchedule(cpu_id);
}

void Machine::RescheduleIdle(Task* woken) {
  if (!config_.smp) {
    Cpu& c = *cpus_[0];
    if (c.stalled) {
      c.need_resched = true;
      return;
    }
    if (c.schedule_pending) {
      // The pick in flight predates this wakeup; re-run schedule() right
      // after it completes so the woken task is considered.
      c.need_resched = true;
      return;
    }
    if (c.current == nullptr) {
      RequestSchedule(0);
      return;
    }
    if (scheduler_->PreemptionDelta(*woken, *c.current, 0) > 0) {
      ++stats_.preempt_requests;
      ++scheduler_->mutable_stats().preemption_ipis;
      PreemptCpu(0);
    }
    return;
  }

  // SMP reschedule_idle(): prefer the woken task's last CPU if it is idle,
  // then any idle CPU, then the CPU whose current task it beats by the
  // largest preemption-goodness margin. The idle-CPU mask answers the first
  // two preferences in O(1) — the bit for CPU i is set exactly when
  // current == nullptr && !schedule_pending && !stalled, and Lowest() is the
  // first match of the old ascending-id scan.
  if (idle_cpus_.Test(woken->processor)) {
    RequestSchedule(woken->processor);
    return;
  }
  if (!scheduler_->uses_global_lock()) {
    Cpu& home = *cpus_[static_cast<size_t>(woken->processor)];
    if (home.schedule_pending) {
      // Per-CPU queues anchor this wake to the home CPU's run queue, and the
      // pick in flight there predates the enqueue. Under the global lock any
      // other CPU's next schedule() would still see the task; here nobody
      // else is guaranteed to (an idle CPU's rescue pull skips depth-1
      // queues), so the home CPU must re-run schedule() when its pick lands.
      home.need_resched = true;
    }
  }
  const int first_idle = idle_cpus_.Lowest();
  if (first_idle >= 0) {
    RequestSchedule(first_idle);
    return;
  }
  int best_cpu = -1;
  long best_delta = 0;
  bool all_pending = true;
  for (auto& cpu : cpus_) {
    // Stalled CPUs are unavailable for preemption; if every CPU is stalled
    // or mid-schedule(), the all_pending fallback below parks the wake on
    // the home CPU's need_resched, honored at rejoin.
    if (cpu->stalled || cpu->schedule_pending || cpu->current == nullptr) {
      continue;
    }
    all_pending = false;
    const long delta = scheduler_->PreemptionDelta(*woken, *cpu->current, cpu->id);
    if (delta > best_delta) {
      best_delta = delta;
      best_cpu = cpu->id;
    }
  }
  if (best_cpu >= 0) {
    ++stats_.preempt_requests;
    ++scheduler_->mutable_stats().preemption_ipis;
    PreemptCpu(best_cpu);
    return;
  }
  if (all_pending) {
    // Every CPU is mid-schedule(): their picks predate this wakeup. Make the
    // woken task's home CPU re-run schedule() once its pick lands, so the
    // wake is never silently dropped.
    cpus_[static_cast<size_t>(woken->processor)]->need_resched = true;
  }
}

void Machine::WakeUpProcess(Task* task) {
  if (task->state == TaskState::kRunning || task->state == TaskState::kZombie) {
    return;  // Already runnable (spurious wake) or gone.
  }
  if (task->waiting_on != nullptr) {
    task->waiting_on->Remove(task);
  }
  task->state = TaskState::kRunning;
  task->became_runnable_at = Now();
  ++stats_.wakeups;
  if (LogEnabled(LogLevel::kTrace)) {
    ELSC_LOG_TRACE("[%llu] wake %s (pid %d)", static_cast<unsigned long long>(Now()),
                   task->name.c_str(), task->pid);
  }
  trace_.Record(Now(), TraceEventType::kWake, -1, task->pid);
  if (!task->OnRunQueue()) {
    scheduler_->AddToRunQueue(task);
  }
  CheckInvariantsIfEnabled();
  RescheduleIdle(task);
}

void Machine::SetTaskPriority(Task* task, long priority) {
  ELSC_CHECK(priority >= kMinPriority && priority <= kMaxPriority);
  task->priority = priority;
  // "Its priority almost never changes, though when it does, the ELSC
  // scheduler adapts accordingly" (paper §5): re-file a waiting runnable
  // task so its run-queue placement reflects the new priority. A task
  // currently executing is re-filed naturally at its next schedule().
  if (task->OnRunQueue() && task->has_cpu == 0) {
    scheduler_->DelFromRunQueue(task);
    scheduler_->AddToRunQueue(task);
  }
  CheckInvariantsIfEnabled();
}

void Machine::SetTaskPolicy(Task* task, uint32_t policy, long rt_priority) {
  ELSC_CHECK(PolicyBase(policy) == kSchedOther || PolicyBase(policy) == kSchedFifo ||
             PolicyBase(policy) == kSchedRr);
  ELSC_CHECK(rt_priority >= 0 && rt_priority <= kMaxRtPriority);
  task->policy = (task->policy & kSchedYield) | PolicyBase(policy);
  task->rt_priority = PolicyIsRealtime(policy) ? rt_priority : 0;
  // Re-file a waiting runnable task so sorted run-queue structures see the
  // new class; a running task re-files at its next schedule().
  if (task->OnRunQueue() && task->has_cpu == 0) {
    scheduler_->DelFromRunQueue(task);
    scheduler_->AddToRunQueue(task);
  }
  CheckInvariantsIfEnabled();
  // A policy change can make the task more urgent than something currently
  // running (e.g. promotion to SCHED_FIFO); run the same preemption check a
  // wakeup would.
  if (task->state == TaskState::kRunning && task->has_cpu == 0) {
    RescheduleIdle(task);
  }
}

Task* Machine::ForkTask(Task* parent, const TaskParams& params) {
  ELSC_CHECK_MSG(parent->state == TaskState::kRunning, "fork from a non-running task");
  TaskParams child_params = params;
  if (child_params.mm == nullptr) {
    child_params.mm = parent->mm;  // fork() without exec: shared image model.
  }
  if (child_params.processor < 0) {
    child_params.processor = parent->processor;
  }
  // Split the parent's remaining quantum: the child gets half (rounded up),
  // the parent keeps half — so a fork loop cannot mint CPU share.
  child_params.initial_counter = (parent->counter + 1) >> 1;
  parent->counter >>= 1;
  return CreateTask(child_params);
}

// ---------------------------------------------------------------------------
// Timer
// ---------------------------------------------------------------------------

double Machine::LoadAvg(int which) const {
  ELSC_CHECK(which >= 0 && which < 3);
  return loadavg_[which];
}

void Machine::OnTimerTick() {
  if (pending_tick_drops_ > 0) {
    // Injected tick loss: the interrupt never happens — no counter decay, no
    // quantum expiry, no load sampling — but the timer stays armed.
    --pending_tick_drops_;
    ++stats_.ticks_dropped;
    RearmTimer();
    return;
  }
  ++stats_.ticks;
  // calc_load(): every 5 seconds (500 ticks at HZ=100), fold nr_running into
  // the exponentially-damped 1/5/15-minute averages.
  if (stats_.ticks % 500 == 0) {
    static constexpr double kExp[3] = {
        0.9200444146293233,   // exp(-5s/1min)
        0.9834714538216174,   // exp(-5s/5min)
        0.9944598480048967};  // exp(-5s/15min)
    const auto active = static_cast<double>(scheduler_->nr_running());
    for (int i = 0; i < 3; ++i) {
      loadavg_[i] = loadavg_[i] * kExp[i] + active * (1.0 - kExp[i]);
    }
  }
  for (auto& cpu : cpus_) {
    if (cpu->stalled) {
      continue;  // A stalled CPU takes no ticks.
    }
    Task* task = cpu->current;
    if (task == nullptr) {
      continue;
    }
    // A CPU that is inside schedule() (lock wait / pick in progress) is not
    // executing its previous task; charging the tick to it would mutate a
    // counter while the task may already sit in a sorted run-queue
    // structure, corrupting the ELSC table's ordering invariants.
    if (cpu->schedule_pending) {
      continue;
    }
    // SCHED_FIFO tasks run until they block or yield; everyone else burns
    // quantum, 10 ms per tick.
    if (PolicyBase(task->policy) != kSchedFifo) {
      if (task->counter > 0) {
        --task->counter;
      }
      if (task->counter == 0) {
        ++stats_.quantum_expiries;
        PreemptCpu(cpu->id);
      }
    }
  }
  RearmTimer();
}

void Machine::RearmTimer() {
  const Cycles delay = kTickCycles + pending_tick_jitter_;
  pending_tick_jitter_ = 0;
  engine_.ScheduleAfter(delay, [this] { OnTimerTick(); });
}

// ---------------------------------------------------------------------------
// Fault injection
// ---------------------------------------------------------------------------

void Machine::StallCpu(int cpu_id, Cycles duration) {
  ELSC_CHECK(cpu_id >= 0 && cpu_id < num_cpus());
  Cpu& c = *cpus_[static_cast<size_t>(cpu_id)];
  if (c.stalled || duration == 0) {
    return;
  }
  c.stalled = true;
  UpdateIdleMask(cpu_id);
  ++stats_.cpu_stalls;
  if (c.segment_event != 0) {
    StopSegment(cpu_id);  // Credits partial work; the segment stays active.
  }
  engine_.ScheduleAfter(duration, [this, cpu_id] { ResumeCpu(cpu_id); });
}

void Machine::ResumeCpu(int cpu_id) {
  Cpu& c = *cpus_[static_cast<size_t>(cpu_id)];
  c.stalled = false;
  UpdateIdleMask(cpu_id);
  if (c.schedule_pending) {
    return;  // A pick from before the stall is still in flight.
  }
  if (c.current != nullptr) {
    if (c.segment_event == 0) {
      // Resume the parked segment; a deferred preemption is honored inside.
      InstallSegment(cpu_id, 0);
    }
    return;
  }
  // Idle rejoin: re-enter schedule() so any wake deferred during the stall
  // (or work queued behind busy peers) is picked up immediately.
  c.need_resched = false;
  RequestSchedule(cpu_id);
}

void Machine::UpdateIdleMask(int cpu_id) {
  const Cpu& c = *cpus_[static_cast<size_t>(cpu_id)];
  idle_cpus_.Assign(cpu_id, c.current == nullptr && !c.schedule_pending && !c.stalled);
}

void Machine::MaybeRecycleTask(Task* task) {
  if (!config_.recycle_exited_tasks) {
    return;
  }
  // Safe only once nothing can reach the task anymore: it has exited, no CPU
  // still holds it as its schedule() prev, no timer wake event captured it,
  // and it is off every run-queue structure.
  if (task->state != TaskState::kZombie || task->has_cpu != 0 ||
      task->pending_timer_wakes > 0 || task->OnRunQueue()) {
    return;
  }
  const size_t slot = static_cast<size_t>(task->registry_slot);
  ELSC_CHECK(slot < tasks_.size() && tasks_[slot] == task);
  tasks_[slot] = tasks_.back();
  tasks_[slot]->registry_slot = static_cast<int>(slot);
  tasks_.pop_back();
  task_arena_.Release(task);
}

void Machine::CheckInvariantsIfEnabled() {
  if (config_.check_invariants) {
    scheduler_->CheckInvariants();
    for (int i = 0; i < num_cpus(); ++i) {
      const Cpu& c = *cpus_[static_cast<size_t>(i)];
      ELSC_VERIFY_MSG(idle_cpus_.Test(i) ==
                          (c.current == nullptr && !c.schedule_pending && !c.stalled),
                      "idle-CPU mask disagrees with per-CPU state");
    }
  }
}

}  // namespace elsc
