// Per-CPU state for the simulated SMP machine.

#ifndef SRC_SMP_CPU_H_
#define SRC_SMP_CPU_H_

#include <cstdint>

#include "src/base/time_units.h"
#include "src/kernel/task.h"
#include "src/sim/event_queue.h"

namespace elsc {

struct CpuStats {
  Cycles busy_cycles = 0;      // Executing task work (incl. switch overhead).
  Cycles idle_cycles = 0;      // No runnable task.
  Cycles sched_cycles = 0;     // Inside schedule() (incl. lock wait).
  uint64_t dispatches = 0;     // Tasks placed on this CPU.
  uint64_t context_switches = 0;
  uint64_t idle_periods = 0;
};

struct Cpu {
  int id = 0;

  // The task currently executing; nullptr means the idle task.
  Task* current = nullptr;

  // True from the moment this CPU requests schedule() until the pick is
  // dispatched (covers run-queue lock wait + the pick itself).
  bool schedule_pending = false;
  Cycles schedule_requested_at = 0;

  // A preemption arrived while no segment event was live (e.g. during a
  // behavior callback); honored as soon as the next segment is installed.
  bool need_resched = false;

  // In-flight segment-end event. 0 when none is live.
  EventId segment_event = 0;
  // Monotonic generation; stale segment-end events are ignored.
  uint64_t dispatch_generation = 0;

  // Bookkeeping for the live segment.
  Cycles segment_started_at = 0;  // When the dispatch began.
  Cycles segment_overhead = 0;    // Context-switch + migration cycles before useful work.
  Cycles segment_useful = 0;      // Useful cycles the segment would complete.

  // When the current idle period began (valid while current == nullptr).
  Cycles idle_since = 0;

  // Fault injection: a stalled CPU takes no ticks, installs no segments and
  // defers preemption requests until Machine::ResumeCpu() rejoins it.
  bool stalled = false;

  CpuStats stats;

  bool IsIdle() const { return current == nullptr; }
};

}  // namespace elsc

#endif  // SRC_SMP_CPU_H_
