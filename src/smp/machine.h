// The simulated machine: CPUs + scheduler + timer tick + dispatch loop.
//
// This is the reproduction's stand-in for the Linux 2.3.99-pre4 kernel
// runtime. It owns the discrete-event engine, the global task list, the
// scheduler under test, and N simulated CPUs, and implements:
//
//  * the 10 ms timer tick (counter decrement, quantum expiry -> need_resched),
//  * schedule() invocation with a run-queue-lock serialization model. Global-
//    lock schedulers (uses_global_lock() == true) serialize on one
//    runqueue_lock with FIFO waiters — the 2.3.x kernel had exactly one.
//    Per-CPU-queue schedulers (uses_global_lock() == false) take only their
//    own CPU's run-queue lock, so picks on different CPUs overlap freely;
//    a pick that migrates tasks additionally acquires the source CPUs' locks
//    (reported via CostMeter::ChargeRemoteLock, applied by the Machine in
//    ascending CPU index — the double-lock order) and a CPU whose lock is
//    held by a remote pick spins until the holder releases,
//  * context-switch and cache-migration cost accounting,
//  * wake_up_process() / reschedule_idle() preemption,
//  * task lifecycle (create, block, yield, exit) driven by TaskBehaviors.

#ifndef SRC_SMP_MACHINE_H_
#define SRC_SMP_MACHINE_H_

#include <deque>
#include <memory>
#include <string>
#include <vector>

#include "src/base/arena.h"
#include "src/base/bitmap.h"
#include "src/base/rng.h"
#include "src/base/time_units.h"
#include "src/kernel/behavior.h"
#include "src/kernel/pid_allocator.h"
#include "src/kernel/task.h"
#include "src/kernel/task_list.h"
#include "src/kernel/wait_queue.h"
#include "src/sched/cost_model.h"
#include "src/sched/elsc_scheduler.h"
#include "src/sched/factory.h"
#include "src/sim/engine.h"
#include "src/smp/cpu.h"
#include "src/smp/trace.h"

namespace elsc {

struct MachineConfig {
  int num_cpus = 1;
  // SMP kernel semantics (affinity bonus, has_cpu checks, lock contention).
  // The paper's "UP" configuration is num_cpus == 1, smp == false; its "1P"
  // configuration is num_cpus == 1, smp == true.
  bool smp = false;
  SchedulerKind scheduler = SchedulerKind::kElsc;
  CostModel cost_model = CostModel::PentiumII();
  ElscOptions elsc;
  uint64_t seed = 1;
  // Run scheduler invariant checks after every operation (slow; tests only).
  bool check_invariants = false;
  // Recycle exited tasks' arena slots once no CPU or pending timer event can
  // still reference them. Off by default: recycling removes zombies from
  // all_tasks() (and reuses their memory), which is observable to consumers
  // that index the registry — e.g. the fault injector's spurious-wake victim
  // selection — so enabling it changes fault-replay sequences. Embedders
  // running long churn-heavy simulations without such consumers can turn it
  // on to bound memory by the peak (not total) task population.
  bool recycle_exited_tasks = false;
  // Extension seam: when set, the Machine builds its scheduler through this
  // factory instead of `scheduler`, so embedders can plug in custom policies
  // (see examples/custom_scheduler.cpp).
  std::function<std::unique_ptr<Scheduler>(const CostModel&, TaskList*, const SchedulerConfig&)>
      scheduler_factory;
};

struct MachineStats {
  uint64_t ticks = 0;
  uint64_t context_switches = 0;
  uint64_t migrations = 0;       // Dispatches onto a CPU != last processor.
  uint64_t wakeups = 0;
  uint64_t tasks_created = 0;
  uint64_t tasks_exited = 0;
  // High-water mark of concurrently live (created, not yet exited) tasks.
  // Memory accounting only — NOT part of RunStatsDigest (the digest format
  // is pinned by the golden-stats suite); travels through EncodeRunStats and
  // the /proc-style report instead.
  uint64_t peak_live_tasks = 0;
  uint64_t quantum_expiries = 0;
  uint64_t preempt_requests = 0;  // reschedule_idle() decided to preempt.
  // Fault injection (all zero when no FaultInjector is armed).
  uint64_t ticks_dropped = 0;      // Timer ticks lost to injected tick loss.
  uint64_t cpu_stalls = 0;         // StallCpu() stall windows entered.
  Cycles lock_stall_cycles = 0;    // Injected lock-holder preemption time.
};

// Per-CPU run-queue lock accounting (per-CPU-queue schedulers only; every
// field stays zero under a global-lock scheduler). The lock is modeled as a
// hold window in simulated time: a pick holds its own CPU's lock for the
// pick's duration, and a migrating pick extends the hold window of every
// remote lock it took to the end of the pick.
struct CpuLockStats {
  Cycles held_until = 0;        // Lock is held iff held_until > Now().
  Cycles hold_cycles = 0;       // Total cycles this lock was held.
  Cycles wait_cycles = 0;       // Cycles pickers spun waiting for this lock.
  uint64_t acquisitions = 0;    // Own-CPU pick acquisitions.
  uint64_t remote_acquisitions = 0;  // Acquisitions by migrating peers.
  uint64_t contended = 0;       // Acquisitions that found the lock held.
};

struct TaskParams {
  std::string name;
  MmStruct* mm = nullptr;          // nullptr: give the task a fresh mm.
  long priority = kDefaultPriority;
  uint32_t policy = kSchedOther;
  long rt_priority = 0;
  long initial_counter = -1;       // -1: start with a full quantum (priority).
  int processor = -1;              // -1: spread round-robin across CPUs.
  TaskBehavior* behavior = nullptr;
};

class Machine : public Waker {
 public:
  explicit Machine(const MachineConfig& config);
  ~Machine() override;

  Machine(const Machine&) = delete;
  Machine& operator=(const Machine&) = delete;

  // ---- Setup ----
  MmStruct* CreateMm();
  // Creates a runnable task and wakes it into the scheduler.
  Task* CreateTask(const TaskParams& params);
  // Starts the timer tick and kicks every CPU's first schedule.
  void Start();

  // ---- Running ----
  void RunFor(Cycles duration);
  // Runs until `predicate` holds (checked after every event) or `deadline`
  // simulated cycles elapse. Returns true if the predicate held.
  bool RunUntil(const std::function<bool()>& predicate, Cycles deadline);
  // Runs until every created task has exited (idle ticks keep firing, so
  // a deadline is required). Returns true on success.
  bool RunUntilAllExited(Cycles deadline);

  // ---- Kernel services used by behaviors/workloads ----
  void WakeUpProcess(Task* task) override;  // try_to_wake_up()
  // Changes a SCHED_OTHER task's priority, re-filing it if needed.
  void SetTaskPriority(Task* task, long priority);
  // sched_setscheduler(): changes policy (+rt_priority), re-filing if needed.
  void SetTaskPolicy(Task* task, uint32_t policy, long rt_priority);
  // fork(): creates a runnable child on the parent's CPU, splitting the
  // parent's remaining quantum with it (Linux 2.3.99 semantics: the child
  // gets half, the parent keeps half — forking buys no extra CPU share).
  Task* ForkTask(Task* parent, const TaskParams& params);

  // ---- Introspection ----
  Cycles Now() const { return engine_.Now(); }
  Engine& engine() { return engine_; }
  const Engine& engine() const { return engine_; }
  Scheduler& scheduler() { return *scheduler_; }
  const Scheduler& scheduler() const { return *scheduler_; }
  const MachineConfig& config() const { return config_; }
  TaskList& tasks() { return task_list_; }
  Rng& rng() { return rng_; }
  MachineStats& stats() { return stats_; }
  const MachineStats& stats() const { return stats_; }
  Cpu& cpu(int index) { return *cpus_[static_cast<size_t>(index)]; }
  const Cpu& cpu(int index) const { return *cpus_[static_cast<size_t>(index)]; }
  int num_cpus() const { return config_.num_cpus; }
  size_t live_tasks() const { return live_tasks_; }
  // Per-CPU run-queue lock accounting (all-zero for global-lock schedulers).
  const CpuLockStats& cpu_lock(int index) const {
    return cpu_locks_[static_cast<size_t>(index)];
  }

  // Kernel-style load averages (exponentially-damped nr_running, sampled
  // every 5 simulated seconds). which: 0 = 1 min, 1 = 5 min, 2 = 15 min.
  double LoadAvg(int which) const;

  // Event trace recorder (disabled unless TraceRecorder::Enable is called).
  TraceRecorder& trace() { return trace_; }
  const TraceRecorder& trace() const { return trace_; }

  // All tasks, in creation order, zombies included (unless
  // recycle_exited_tasks reclaimed them); owned by the machine's task arena.
  const std::vector<Task*>& all_tasks() const { return tasks_; }
  const ArenaStats& task_arena_stats() const { return task_arena_.stats(); }
  // Bytes resident in the task arena's slabs (a high-water mark: slabs are
  // never returned). Feeds the memory block of RunStats / the proc report.
  size_t task_arena_bytes() const { return task_arena_.footprint_bytes(); }

  // ---- Fault-injection hooks (driven by src/faults/) ----
  // Stalls a CPU for `duration` cycles: its live segment is parked (partial
  // work credited), it takes no timer ticks, and preemption requests are
  // deferred until it rejoins. Models a hotplug pause / SMI-style stall.
  // No-op if the CPU is already stalled or duration == 0.
  void StallCpu(int cpu_id, Cycles duration);
  // Drops the next `n` timer ticks (the timer keeps re-arming; the dropped
  // ticks decrement no counters and expire no quanta).
  void InjectTickDrops(uint64_t n) { pending_tick_drops_ += n; }
  // Delays the timer's next re-arm by `delta` extra cycles (tick jitter).
  void InjectTickJitter(Cycles delta) { pending_tick_jitter_ += delta; }
  // The next schedule() pick on a global-lock scheduler holds the run-queue
  // lock `extra` cycles longer (lock-holder preemption spike). Ignored by
  // per-CPU-queue schedulers, which never take the global lock (their
  // per-CPU hold windows are driven by pick cost alone).
  void AddLockHolderStall(Cycles extra) { pending_lock_stall_ += extra; }
  // Observer invoked synchronously after every scheduler pick (before the
  // pick is claimed), with the run queue in its post-pick state. Used by the
  // SchedulerAuditor to audit pick ordering.
  using PickObserver = std::function<void(int cpu_id, const Task* prev, const Task* next)>;
  void SetPickObserver(PickObserver observer) { pick_observer_ = std::move(observer); }

 private:
  // ---- schedule() path ----
  void RequestSchedule(int cpu_id);
  void TryGrantLock();
  // Per-CPU-queue path: runs the pick if cpu_id's own lock is free, else
  // re-arms itself for the moment the current holder releases (spin model).
  void AcquireCpuLock(int cpu_id);
  void DoSchedule(int cpu_id);
  void FinishSchedule(int cpu_id, Task* next, Cycles pick_cost);
  void Dispatch(int cpu_id, Task* next);

  // ---- segment execution ----
  void InstallSegment(int cpu_id, Cycles overhead);
  void OnSegmentEnd(int cpu_id, uint64_t generation);
  // Cancels the live segment (if any), crediting partial progress.
  void StopSegment(int cpu_id);
  // Fetches the next segment from the behavior, enforcing sanity.
  Segment FetchSegment(Task* task);

  // ---- preemption ----
  void PreemptCpu(int cpu_id);
  void RescheduleIdle(Task* woken);

  // ---- timer ----
  void OnTimerTick();
  void RearmTimer();

  // ---- fault injection ----
  void ResumeCpu(int cpu_id);

  void ExitTask(int cpu_id, Task* task);
  void CheckInvariantsIfEnabled();

  // ---- idle-CPU mask ----
  // Re-derives cpu_id's bit: set iff the CPU is idle and available (no
  // current task, no schedule() in flight, not stalled). Called after every
  // mutation of those three fields so RescheduleIdle() can find an idle CPU
  // with one find-first-set instead of scanning every CPU per wakeup.
  void UpdateIdleMask(int cpu_id);

  // ---- task arena ----
  // Releases a zombie's slot back to the arena once nothing references it
  // (recycle_exited_tasks only).
  void MaybeRecycleTask(Task* task);

  MachineConfig config_;
  Engine engine_;
  Rng rng_;
  PidAllocator pids_;
  TaskList task_list_;
  std::vector<std::unique_ptr<MmStruct>> mms_;
  // Task storage: slab arena for stable pointers + freelist reuse; `tasks_`
  // is the creation-order registry backing all_tasks().
  SlabArena<Task> task_arena_;
  std::vector<Task*> tasks_;
  std::unique_ptr<Scheduler> scheduler_;
  std::vector<std::unique_ptr<Cpu>> cpus_;
  MachineStats stats_;

  // Global run-queue lock model: one holder at a time, FIFO waiters.
  // Engaged only when scheduler_->uses_global_lock().
  bool lock_held_ = false;
  std::deque<int> lock_waiters_;
  // Per-CPU run-queue lock model (the complementary path): one entry per
  // CPU; engaged only when !scheduler_->uses_global_lock().
  std::vector<CpuLockStats> cpu_locks_;

  // Pending injected faults (consumed by the timer / schedule paths).
  uint64_t pending_tick_drops_ = 0;
  Cycles pending_tick_jitter_ = 0;
  Cycles pending_lock_stall_ = 0;
  PickObserver pick_observer_;

  // Bit i set iff CPU i is idle and available (see UpdateIdleMask).
  OccupancyBitmap idle_cpus_;

  TraceRecorder trace_;
  size_t live_tasks_ = 0;
  bool started_ = false;
  uint64_t next_mm_id_ = 1;
  double loadavg_[3] = {0.0, 0.0, 0.0};
};

}  // namespace elsc

#endif  // SRC_SMP_MACHINE_H_
