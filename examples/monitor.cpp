// Monitor example: top-style periodic snapshots of a running VolanoMark
// simulation — load averages, scheduler statistics deltas, the run-queue
// structure (paper Figure 1 rendering), and the busiest tasks.
//
//   $ ./monitor [linux|elsc|heap|multiqueue] [rooms] [interval_sec]

#include <cstdio>
#include <cstdlib>
#include <string>

#include "src/sched/factory.h"
#include "src/smp/machine.h"
#include "src/stats/proc_report.h"
#include "src/stats/ps_report.h"
#include "src/workloads/volano.h"

int main(int argc, char** argv) {
  const std::string sched_name = argc > 1 ? argv[1] : "linux";
  const int rooms = argc > 2 ? std::atoi(argv[2]) : 2;
  const int interval_sec = argc > 3 ? std::atoi(argv[3]) : 5;

  elsc::MachineConfig config;
  config.num_cpus = 2;
  config.smp = true;
  config.scheduler = elsc::SchedulerKindFromName(sched_name);
  elsc::Machine machine(config);

  elsc::VolanoConfig volano;
  volano.rooms = rooms;
  elsc::VolanoWorkload workload(machine, volano);
  workload.Setup();
  machine.Start();

  uint64_t last_calls = 0;
  uint64_t last_delivered = 0;
  int snapshot = 0;
  while (!workload.Done() && elsc::CyclesToSec(machine.Now()) < 600.0) {
    machine.RunFor(elsc::SecToCycles(static_cast<uint64_t>(interval_sec)));
    ++snapshot;
    const auto& stats = machine.scheduler().stats();
    const uint64_t delivered = workload.messages_delivered();
    std::printf("--- t=%.0fs  snapshot %d ---\n", elsc::CyclesToSec(machine.Now()), snapshot);
    std::printf("load: %.2f %.2f %.2f   msgs/s: %.0f   sched calls/s: %.0f   cyc/sched: %.0f\n",
                machine.LoadAvg(0), machine.LoadAvg(1), machine.LoadAvg(2),
                static_cast<double>(delivered - last_delivered) / interval_sec,
                static_cast<double>(stats.schedule_calls - last_calls) / interval_sec,
                stats.CyclesPerSchedule());
    last_calls = stats.schedule_calls;
    last_delivered = delivered;

    // Run-queue structure (truncated) + top tasks.
    std::string structure = machine.scheduler().DebugString();
    if (structure.size() > 400) {
      structure.resize(400);
      structure += "...";
    }
    std::printf("%s\n", structure.c_str());
    elsc::PsOptions top;
    top.sort_by_cpu = true;
    top.max_rows = 5;
    std::printf("%s\n", RenderPs(machine, top).c_str());
  }

  std::printf("final: %s\n", workload.Done() ? "workload completed" : "deadline reached");
  std::printf("%s", elsc::RenderProcSchedStats(machine).c_str());
  return workload.Done() ? 0 : 1;
}
