// Custom-scheduler example: how to plug your own scheduling policy into the
// simulated kernel.
//
// Implements a deliberately naive FIFO scheduler (ignore goodness entirely;
// run whoever has waited longest) against the Scheduler interface, then
// races it against the stock and ELSC schedulers on a small VolanoMark run.
// The point: the library's Machine, workloads, and statistics all work with
// any Scheduler implementation — this is the extension surface the paper's
// future-work section invites ("we are also interested in exploring
// alternative scheduler designs").
//
//   $ ./custom_scheduler

#include <cstdio>
#include <deque>
#include <memory>

#include "src/base/assert.h"
#include "src/kernel/policy.h"
#include "src/sched/scheduler.h"
#include "src/smp/machine.h"
#include "src/stats/table.h"
#include "src/workloads/volano.h"

namespace {

// First-in, first-out: tasks run in wake order, full quantum each time.
// Interactive tasks get no preference, so latency suffers — measurably.
class FifoScheduler : public elsc::Scheduler {
 public:
  FifoScheduler(const elsc::CostModel& cost_model, elsc::TaskList* all_tasks,
                const elsc::SchedulerConfig& config)
      : Scheduler(cost_model, all_tasks, config) {}

  const char* name() const override { return "naive-fifo"; }

  void AddToRunQueue(elsc::Task* task) override {
    ELSC_CHECK(!task->OnRunQueue());
    task->run_list.next = &task->run_list;  // On-run-queue marker.
    task->run_list.prev = &task->run_list;
    queue_.push_back(task);
    ++nr_running_;
  }

  void DelFromRunQueue(elsc::Task* task) override {
    ELSC_CHECK(task->OnRunQueue());
    for (auto it = queue_.begin(); it != queue_.end(); ++it) {
      if (*it == task) {
        queue_.erase(it);
        break;
      }
    }
    task->run_list.next = nullptr;
    task->run_list.prev = nullptr;
    --nr_running_;
  }

  void MoveFirstRunQueue(elsc::Task* task) override { (void)task; }
  void MoveLastRunQueue(elsc::Task* task) override { (void)task; }

  elsc::Task* Schedule(int this_cpu, elsc::Task* prev, elsc::CostMeter& meter) override {
    meter.ChargeEntry();
    meter.ChargeLock();
    if (prev != nullptr) {
      prev->policy &= ~elsc::kSchedYield;
      if (prev->state == elsc::TaskState::kRunning) {
        if (prev->counter == 0) {
          prev->counter = prev->priority;  // FIFO ignores fairness anyway.
        }
        queue_.push_back(prev);  // Back of the line.
      } else if (prev->OnRunQueue()) {
        DelFromRunQueue(prev);
      }
    }
    for (auto it = queue_.begin(); it != queue_.end(); ++it) {
      elsc::Task* candidate = *it;
      meter.ChargeExamine();
      if (config_.smp && candidate->has_cpu != 0 && candidate->processor != this_cpu) {
        continue;
      }
      queue_.erase(it);
      meter.ChargeFinish();
      RecordPick(this_cpu, prev, candidate, meter);
      return candidate;
    }
    meter.ChargeFinish();
    RecordPick(this_cpu, prev, nullptr, meter);
    return nullptr;
  }

 private:
  std::deque<elsc::Task*> queue_;
};

}  // namespace

int main() {
  std::printf("Racing a custom FIFO scheduler against the built-ins (2 rooms, 2P)...\n\n");

  elsc::TextTable table({"scheduler", "completed", "throughput", "cycles/sched"});

  auto report = [&table](const char* label, elsc::Machine& machine, bool done,
                         const elsc::VolanoWorkload& workload) {
    const elsc::VolanoResult result = workload.Result();
    char tput[32], cps[32];
    std::snprintf(tput, sizeof(tput), "%.0f", result.throughput);
    std::snprintf(cps, sizeof(cps), "%.0f", machine.scheduler().stats().CyclesPerSchedule());
    table.AddRow({label, done ? "yes" : "NO", tput, cps});
  };

  elsc::VolanoConfig volano;
  volano.rooms = 2;

  // Built-ins, via the factory.
  for (const auto kind : {elsc::SchedulerKind::kLinux, elsc::SchedulerKind::kElsc}) {
    elsc::MachineConfig config;
    config.num_cpus = 2;
    config.smp = true;
    config.scheduler = kind;
    elsc::Machine machine(config);
    elsc::VolanoWorkload workload(machine, volano);
    workload.Setup();
    machine.Start();
    const bool done =
        machine.RunUntil([&workload] { return workload.Done(); }, elsc::SecToCycles(3600));
    report(elsc::SchedulerKindName(kind), machine, done, workload);
  }

  // The custom scheduler, through the Machine's extension seam: set
  // MachineConfig::scheduler_factory and everything else — workloads,
  // statistics, procfs reports — works unchanged.
  {
    elsc::MachineConfig config;
    config.num_cpus = 2;
    config.smp = true;
    config.scheduler_factory = [](const elsc::CostModel& cost_model, elsc::TaskList* tasks,
                                  const elsc::SchedulerConfig& sched_config) {
      return std::make_unique<FifoScheduler>(cost_model, tasks, sched_config);
    };
    elsc::Machine machine(config);
    elsc::VolanoWorkload workload(machine, volano);
    workload.Setup();
    machine.Start();
    const bool done =
        machine.RunUntil([&workload] { return workload.Done(); }, elsc::SecToCycles(3600));
    report(machine.scheduler().name(), machine, done, workload);
  }

  table.Print();
  return 0;
}
