// Quickstart: build a 2-CPU SMP machine, run a small mixed workload under
// the ELSC scheduler, and print the procfs-style scheduler statistics.
//
//   $ ./quickstart [linux|elsc|heap]

#include <cstdio>
#include <string>

#include "src/sched/factory.h"
#include "src/smp/machine.h"
#include "src/stats/proc_report.h"
#include "src/stats/ps_report.h"
#include "src/workloads/micro_behaviors.h"

int main(int argc, char** argv) {
  const std::string sched_name = argc > 1 ? argv[1] : "elsc";

  elsc::MachineConfig config;
  config.num_cpus = 2;
  config.smp = true;
  config.scheduler = elsc::SchedulerKindFromName(sched_name);
  config.seed = 42;

  elsc::Machine machine(config);

  // A couple of CPU hogs, an interactive task, and a yield-happy task — the
  // basic mix the scheduler has to arbitrate.
  elsc::SpinnerBehavior hog_a(elsc::MsToCycles(5), elsc::SecToCycles(2));
  elsc::SpinnerBehavior hog_b(elsc::MsToCycles(5), elsc::SecToCycles(2));
  elsc::InteractiveBehavior editor(elsc::UsToCycles(300), elsc::MsToCycles(30), 120);
  elsc::YielderBehavior spin_lock(elsc::UsToCycles(50), 400);

  elsc::TaskParams params;
  params.name = "hog-a";
  params.behavior = &hog_a;
  machine.CreateTask(params);
  params.name = "hog-b";
  params.behavior = &hog_b;
  machine.CreateTask(params);
  params.name = "editor";
  params.behavior = &editor;
  machine.CreateTask(params);
  params.name = "spinlock";
  params.behavior = &spin_lock;
  machine.CreateTask(params);

  machine.Start();
  machine.RunFor(elsc::MsToCycles(500));
  std::printf("run-queue structure at t=0.5s (paper Figure 1 style):\n%s\n\n",
              machine.scheduler().DebugString().c_str());
  std::printf("%s\n", elsc::RenderPs(machine).c_str());
  const bool done = machine.RunUntilAllExited(elsc::SecToCycles(60));

  std::printf("all tasks exited: %s\n", done ? "yes" : "NO (deadline hit)");
  std::printf("simulated elapsed: %.3f s\n\n", elsc::CyclesToSec(machine.Now()));
  std::printf("%s", elsc::RenderProcSchedStats(machine).c_str());

  // Per-task accounting.
  std::printf("\n%-10s %12s %12s %10s %8s %8s\n", "task", "cpu_ms", "wait_ms", "scheds",
              "yields", "migr");
  for (const auto& task : machine.all_tasks()) {
    std::printf("%-10s %12.2f %12.2f %10llu %8llu %8llu\n", task->name.c_str(),
                elsc::CyclesToMs(task->stats.cpu_cycles), elsc::CyclesToMs(task->stats.wait_cycles),
                static_cast<unsigned long long>(task->stats.times_scheduled),
                static_cast<unsigned long long>(task->stats.yields),
                static_cast<unsigned long long>(task->stats.migrations));
  }
  return done ? 0 : 1;
}
