// Chat-server example: a VolanoMark-style run comparing the stock Linux
// 2.3.99 scheduler with the ELSC scheduler on the configuration of your
// choice.
//
//   $ ./chat_server [UP|1P|2P|4P] [rooms] [seed]

#include <cstdio>
#include <cstdlib>
#include <string>

#include "src/api/simulation.h"
#include "src/stats/table.h"

int main(int argc, char** argv) {
  const std::string config_label = argc > 1 ? argv[1] : "2P";
  const int rooms = argc > 2 ? std::atoi(argv[2]) : 4;
  const uint64_t seed = argc > 3 ? static_cast<uint64_t>(std::atoll(argv[3])) : 1;

  elsc::VolanoConfig volano;
  volano.rooms = rooms;

  const elsc::KernelConfig kernel = elsc::KernelConfigFromLabel(config_label);

  std::printf("VolanoMark-sim: %d rooms x %d users x %d messages on %s\n", volano.rooms,
              volano.users_per_room, volano.messages_per_user, config_label.c_str());
  std::printf("threads: %d   expected deliveries: %llu\n\n", volano.total_threads(),
              static_cast<unsigned long long>(volano.expected_deliveries()));

  elsc::TextTable table({"scheduler", "completed", "elapsed_s", "msgs/sec", "cycles/sched",
                         "tasks_examined", "recalcs", "sched_calls"});

  for (const auto kind : {elsc::SchedulerKind::kLinux, elsc::SchedulerKind::kElsc}) {
    const elsc::MachineConfig mc = elsc::MakeMachineConfig(kernel, kind, seed);
    const elsc::VolanoRun run = elsc::RunVolano(mc, volano);
    char elapsed[32], tput[32], cps[32], tex[32];
    std::snprintf(elapsed, sizeof(elapsed), "%.2f", run.result.elapsed_sec);
    std::snprintf(tput, sizeof(tput), "%.0f", run.result.throughput);
    std::snprintf(cps, sizeof(cps), "%.0f", run.stats.sched.CyclesPerSchedule());
    std::snprintf(tex, sizeof(tex), "%.2f", run.stats.sched.TasksExaminedPerCall());
    table.AddRow({elsc::SchedulerKindName(kind), run.result.completed ? "yes" : "NO", elapsed,
                  tput, cps, tex, std::to_string(run.stats.sched.recalc_entries),
                  std::to_string(run.stats.sched.schedule_calls)});
  }
  table.Print();
  return 0;
}
