// Web-server example: the paper's future-work scenario (§8).
//
// Runs an Apache-style prefork worker pool under increasing request rates
// and reports throughput and latency percentiles for both schedulers, so
// you can see where (and whether) the scheduler becomes the bottleneck.
//
//   $ ./webserver [workers] [config]
//   $ ./webserver 150 4P

#include <cstdio>
#include <cstdlib>
#include <string>

#include "src/api/simulation.h"
#include "src/stats/table.h"

int main(int argc, char** argv) {
  const int workers = argc > 1 ? std::atoi(argv[1]) : 150;
  const std::string config_label = argc > 2 ? argv[2] : "2P";
  const elsc::KernelConfig kernel = elsc::KernelConfigFromLabel(config_label);

  std::printf("Apache-style prefork server: %d workers on %s, 10 s windows\n\n", workers,
              config_label.c_str());

  elsc::TextTable table({"rate/s", "sched", "req/s", "p50 us", "p95 us", "p99 us", "drops",
                         "sched calls", "cycles/sched"});
  for (const double rate : {200.0, 600.0, 1200.0, 2400.0}) {
    for (const auto sched : {elsc::SchedulerKind::kLinux, elsc::SchedulerKind::kElsc}) {
      elsc::WebserverConfig workload;
      workload.workers = workers;
      workload.arrival_rate_per_sec = rate;
      workload.duration = elsc::SecToCycles(10);
      const elsc::MachineConfig machine = MakeMachineConfig(kernel, sched);
      const elsc::WebserverRun run = RunWebserver(machine, workload);
      char req[32], cps[32];
      std::snprintf(req, sizeof(req), "%.0f", run.result.throughput);
      std::snprintf(cps, sizeof(cps), "%.0f", run.stats.sched.CyclesPerSchedule());
      table.AddRow({std::to_string(static_cast<int>(rate)), SchedulerKindName(sched), req,
                    std::to_string(run.result.latency_p50_us),
                    std::to_string(run.result.latency_p95_us),
                    std::to_string(run.result.latency_p99_us),
                    std::to_string(run.result.requests_dropped),
                    std::to_string(run.stats.sched.schedule_calls), cps});
    }
  }
  table.Print();
  return 0;
}
